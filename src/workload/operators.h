#ifndef TASQ_WORKLOAD_OPERATORS_H_
#define TASQ_WORKLOAD_OPERATORS_H_

#include <cstddef>

namespace tasq {

/// The 35 SCOPE physical operators modeled by the synthetic workload
/// (paper Table 1 cites 35 physical operators, described in Zhou et al.).
/// The exact production names are proprietary; these are the standard
/// SCOPE/relational physical operators that the public papers describe.
enum class PhysicalOperator : int {
  kExtract = 0,
  kFilter,
  kProject,
  kComputeScalar,
  kHashJoin,
  kMergeJoin,
  kNestedLoopJoin,
  kBroadcastJoin,
  kSemiJoin,
  kAntiSemiJoin,
  kCrossJoin,
  kHashAggregate,
  kStreamAggregate,
  kLocalAggregate,
  kSort,
  kTopSort,
  kWindowAggregate,
  kExchangePartition,
  kExchangeMerge,
  kExchangeBroadcast,
  kUnion,
  kUnionAll,
  kIntersect,
  kExcept,
  kSpool,
  kSplit,
  kSample,
  kProcessUdo,
  kReduceUdo,
  kCombineUdo,
  kIndexLookup,
  kRangeScan,
  kOutput,
  kAssert,
  kSequence,
};

/// Number of distinct physical operators (one-hot width for featurization).
inline constexpr size_t kPhysicalOperatorCount = 35;

/// The four SCOPE partitioning methods (paper Table 1).
enum class PartitioningMethod : int {
  kNone = 0,  // Operator does not repartition.
  kHash,
  kRange,
  kRoundRobin,
  kBroadcast,
};

/// Number of partitioning methods encoded one-hot (kNone is encoded as the
/// absence of all four).
inline constexpr size_t kPartitioningMethodCount = 4;

/// Static properties of an operator type used by the workload generator to
/// derive consistent cardinalities and costs.
struct OperatorTraits {
  // own: borrowed always a static string literal (static storage duration)
  const char* name;
  /// Typical output/input cardinality ratio range.
  double selectivity_lo;
  double selectivity_hi;
  /// Relative CPU cost per input row (1.0 = a simple filter).
  double cost_factor;
  /// True for operators that read from storage (no operator inputs).
  bool is_leaf;
  /// True for operators that combine two or more inputs.
  bool is_multi_input;
  /// True for operators that sort and therefore carry sort columns.
  bool sorts;
  /// True for exchange operators that repartition data.
  bool repartitions;
};

/// Returns the traits for `op`.
const OperatorTraits& GetOperatorTraits(PhysicalOperator op);

/// Short human-readable operator name (e.g., "HashJoin").
const char* OperatorName(PhysicalOperator op);

/// Short name for a partitioning method ("Hash", "Range", ...).
const char* PartitioningMethodName(PartitioningMethod method);

}  // namespace tasq

#endif  // TASQ_WORKLOAD_OPERATORS_H_
