#include "alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace tasq_test {
namespace {

std::atomic<uint64_t> g_allocations{0};

void* CountedAllocate(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;  // operator new must return a unique pointer.
  return std::malloc(size);
}

void* CountedAllocateAligned(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  size = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, size);
}

}  // namespace

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace tasq_test

// Global replacements: C++ finds these instead of the library versions in
// every TU of a binary that links this object file. Allocation failure
// aborts rather than throwing bad_alloc — a test harness has nothing
// useful to do on OOM, and the abort keeps these functions trivially
// noexcept-correct.

void* operator new(std::size_t size) {
  void* p = tasq_test::CountedAllocate(size);
  if (p == nullptr) std::abort();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = tasq_test::CountedAllocate(size);
  if (p == nullptr) std::abort();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return tasq_test::CountedAllocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return tasq_test::CountedAllocate(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = tasq_test::CountedAllocateAligned(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) std::abort();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = tasq_test::CountedAllocateAligned(
      size, static_cast<std::size_t>(alignment));
  if (p == nullptr) std::abort();
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return tasq_test::CountedAllocateAligned(
      size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return tasq_test::CountedAllocateAligned(
      size, static_cast<std::size_t>(alignment));
}

// Every delete pairs with malloc/aligned_alloc above, so plain free()
// releases all of them (glibc free handles aligned_alloc pointers).

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
