#ifndef TASQ_TESTS_ALLOC_COUNTER_H_
#define TASQ_TESTS_ALLOC_COUNTER_H_

#include <cstdint>

// Test-only heap-allocation counter — the runtime tier of the hot-path
// conformance story (DESIGN.md, "Hot-path conformance"). Linking the
// tasq_alloc_counter library replaces the global allocation functions
// (operator new / new[] and their aligned/nothrow variants) with
// malloc-backed versions that bump a process-wide atomic counter, so a
// test can pin an exact allocation budget on a code path:
//
//   uint64_t before = tasq_test::AllocationCount();
//   ... the code under budget ...
//   EXPECT_EQ(tasq_test::AllocationCount() - before, 0u);
//
// The counter counts every thread's allocations (the budget must hold
// process-wide, not just on the calling thread), so measure while
// background threads are quiescent. Deallocation is uncounted: the
// budget is about acquiring memory on the hot path, and counting frees
// would double-charge caller-owned buffer churn.
//
// This mirrors the FPE-trap harness (tests/tasq_test_main.cc): the static
// analyzer (scripts/tasq_hot.py) proves the absence of allocation calls
// in hot code, and this counter catches what static analysis cannot —
// allocations hidden inside library calls, container growth the analyzer
// was waived over, or std::function capture behind a template.

namespace tasq_test {

/// Number of allocation-function invocations since process start, across
/// all threads. Monotone; never reset.
uint64_t AllocationCount();

}  // namespace tasq_test

#endif  // TASQ_TESTS_ALLOC_COUNTER_H_
