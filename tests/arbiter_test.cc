// Behavioral and strategy-proofness regressions for the allocation
// arbiter policies. The canonical-trace tests pin the incentive story:
// a tenant that inflates its requests strictly gains under welfare-max
// (the documented exploit of a strategy-naive objective) while Karma's
// credit pricing bounds the same liar's gain.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "arbiter/allocation_arbiter.h"
#include "simcluster/cluster_scheduler.h"
#include "workload/generator.h"

namespace tasq {
namespace {

JobPlan FlatPlan(int tasks, double duration) {
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, tasks, duration});
  return plan;
}

Submission MakeSubmission(int64_t id, int64_t tenant, double arrival,
                          double tokens, JobPlan plan) {
  Submission submission;
  submission.job_id = id;
  submission.tenant_id = tenant;
  submission.arrival_seconds = arrival;
  submission.requested_tokens = tokens;
  submission.plan = std::move(plan);
  return submission;
}

std::unique_ptr<PolicyArbiter> Arbiter(ArbiterPolicy policy,
                                       const std::vector<Submission>& subs,
                                       double initial_credits = 5000.0) {
  ArbiterOptions options;
  options.policy = policy;
  options.karma_initial_credits = initial_credits;
  return MakeArbiter(options, BeliefsFromPlans(subs));
}

TEST(ArbiterTest, PolicyNamesAreStable) {
  EXPECT_STREQ(ArbiterPolicyName(ArbiterPolicy::kFifoGang), "fifo");
  EXPECT_STREQ(ArbiterPolicyName(ArbiterPolicy::kWelfareMax), "welfare");
  EXPECT_STREQ(ArbiterPolicyName(ArbiterPolicy::kMaxMinFair), "maxmin");
  EXPECT_STREQ(ArbiterPolicyName(ArbiterPolicy::kKarma), "karma");
}

TEST(ArbiterTest, FifoArbiterMatchesInlineScheduler) {
  // The kFifoGang policy routed through the arbiter machinery must
  // reproduce the scheduler's built-in FIFO path byte for byte.
  WorkloadConfig config;
  config.seed = 5;
  WorkloadGenerator generator(config);
  std::vector<Submission> submissions;
  double arrival = 0.0;
  for (const Job& job : generator.Generate(100, 40)) {
    arrival += 7.0;
    submissions.push_back(MakeSubmission(
        job.id, job.id % 3, arrival,
        std::min(200.0, std::max(1.0, job.default_tokens)), job.plan));
  }
  ClusterScheduler scheduler(SchedulerConfig{200.0, false, {}, 3});
  auto inline_trace = scheduler.Run(submissions);
  auto arbiter = Arbiter(ArbiterPolicy::kFifoGang, submissions);
  auto arbiter_trace = scheduler.Run(submissions, arbiter.get());
  ASSERT_TRUE(inline_trace.ok());
  ASSERT_TRUE(arbiter_trace.ok());
  EXPECT_EQ(FormatTrace(inline_trace.value()),
            FormatTrace(arbiter_trace.value()));
}

TEST(ArbiterTest, WelfareGrantsMoreToScalableJob) {
  // Job 1 parallelizes (80 tasks); job 2 saturates at 2 tokens. Under
  // contention welfare-max should pour tokens into the scalable job.
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0, 0.0, 80.0, FlatPlan(80, 10.0)),
      MakeSubmission(2, 1, 0.0, 80.0, FlatPlan(2, 10.0)),
  };
  ClusterScheduler scheduler(SchedulerConfig{100.0, false, {}, 0});
  auto arbiter = Arbiter(ArbiterPolicy::kWelfareMax, submissions);
  auto trace = scheduler.Run(submissions, arbiter.get());
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace.value()[0].granted_tokens,
            2.0 * trace.value()[1].granted_tokens);
}

TEST(ArbiterTest, MaxMinLetsLightTenantThrough) {
  // Tenant 0 floods three 30-token jobs; tenant 1 asks for one. FIFO
  // blocks tenant 1 behind the flood; max-min gives each tenant its
  // share, so tenant 1 starts immediately.
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0, 0.0, 30.0, FlatPlan(30, 10.0)),
      MakeSubmission(2, 0, 0.0, 30.0, FlatPlan(30, 10.0)),
      MakeSubmission(3, 0, 0.0, 30.0, FlatPlan(30, 10.0)),
      MakeSubmission(4, 1, 0.0, 30.0, FlatPlan(30, 10.0)),
  };
  ClusterScheduler scheduler(SchedulerConfig{60.0, false, {}, 0});
  auto fifo = Arbiter(ArbiterPolicy::kFifoGang, submissions);
  auto fifo_trace = scheduler.Run(submissions, fifo.get());
  auto maxmin = Arbiter(ArbiterPolicy::kMaxMinFair, submissions);
  auto maxmin_trace = scheduler.Run(submissions, maxmin.get());
  ASSERT_TRUE(fifo_trace.ok());
  ASSERT_TRUE(maxmin_trace.ok());
  EXPECT_GT(fifo_trace.value()[3].wait_seconds(), 5.0);
  EXPECT_LT(maxmin_trace.value()[3].wait_seconds(), 1.0);
}

TEST(ArbiterTest, KarmaChargesBursterAndPaysDonors) {
  // Tenant 0 bursts to the whole pool while tenant 1 idles: the burst
  // cost must move credits from tenant 0 to tenant 1, conserving the sum.
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0, 0.0, 100.0, FlatPlan(100, 8.0)),
      MakeSubmission(2, 1, 500.0, 10.0, FlatPlan(10, 8.0)),
  };
  ClusterScheduler scheduler(SchedulerConfig{100.0, false, {}, 0});
  auto arbiter = Arbiter(ArbiterPolicy::kKarma, submissions, 1000.0);
  auto trace = scheduler.Run(submissions, arbiter.get());
  ASSERT_TRUE(trace.ok());
  const auto& credits = arbiter->tenant_credits();
  ASSERT_EQ(credits.size(), 2u);
  EXPECT_LT(credits.at(0), 1000.0);
  EXPECT_GT(credits.at(1), 1000.0);
  EXPECT_NEAR(credits.at(0) + credits.at(1), 2000.0, 1e-6);
}

TEST(ArbiterTest, KarmaDebtBoundCapsBurstGrant) {
  // With a nearly empty account and no debt allowance, a tenant asking
  // for the whole pool is capped close to its fair share (half the pool
  // for two tenants): the over-share part it cannot pay for is refused.
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0, 0.0, 100.0, FlatPlan(100, 8.0)),
      MakeSubmission(2, 1, 500.0, 10.0, FlatPlan(10, 8.0)),
  };
  ClusterScheduler scheduler(SchedulerConfig{100.0, false, {}, 0});
  auto arbiter = Arbiter(ArbiterPolicy::kKarma, submissions, 10.0);
  auto trace = scheduler.Run(submissions, arbiter.get());
  ASSERT_TRUE(trace.ok());
  EXPECT_GE(trace.value()[0].granted_tokens, 45.0);
  EXPECT_LE(trace.value()[0].granted_tokens, 55.0);
  EXPECT_GE(arbiter->tenant_credits().at(0), -1e-6);
}

TEST(ArbiterTest, WithInflatedRequestsClampsToPool) {
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0, 0.0, 60.0, FlatPlan(10, 1.0)),
      MakeSubmission(2, 1, 0.0, 60.0, FlatPlan(10, 1.0)),
  };
  auto inflated = WithInflatedRequests(submissions, 0, 3.0, 100.0);
  EXPECT_DOUBLE_EQ(inflated[0].requested_tokens, 100.0);  // 180 capped.
  EXPECT_DOUBLE_EQ(inflated[1].requested_tokens, 60.0);   // Untouched.
}

TEST(ArbiterTest, BeliefsFromPlansAreMonotone) {
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0, 0.0, 50.0, FlatPlan(64, 5.0)),
  };
  PccBeliefs beliefs = BeliefsFromPlans(submissions);
  ASSERT_EQ(beliefs.count(1), 1u);
  EXPECT_TRUE(beliefs[1].IsMonotoneNonIncreasing());
  EXPECT_GT(beliefs[1].EvalRunTime(4.0), beliefs[1].EvalRunTime(64.0));
}

TEST(ArbiterTest, TenantMetricsAndLiarsGainEdgeCases) {
  TenantMetrics empty = ComputeTenantMetrics({}, 100.0);
  EXPECT_DOUBLE_EQ(empty.utilization, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95_wait_seconds, 0.0);
  // A liar's gain over a tenant absent from either trace is zero.
  EXPECT_DOUBLE_EQ(LiarsGain(empty, empty, 7), 0.0);
}

/// The canonical strategy-proofness trace: four symmetric tenants submit
/// one perfectly scalable job per round (request = fair share), with
/// rounds spaced so the honest trace has no queueing. The liar (tenant 0)
/// inflates every request 3x.
struct CanonicalTrace {
  std::vector<Submission> honest;
  std::vector<Submission> lying;
  static constexpr double kPool = 100.0;
  static constexpr int64_t kLiar = 0;

  CanonicalTrace() {
    int64_t id = 0;
    for (int round = 0; round < 12; ++round) {
      for (int64_t tenant = 0; tenant < 4; ++tenant) {
        honest.push_back(MakeSubmission(
            ++id, tenant, 40.0 * round + 0.01 * static_cast<double>(tenant),
            25.0, FlatPlan(100, 8.0)));
      }
    }
    lying = WithInflatedRequests(honest, kLiar, 3.0, kPool);
  }

  double Gain(ArbiterPolicy policy, double initial_credits) const {
    ClusterScheduler scheduler(SchedulerConfig{kPool, false, {}, 0});
    auto honest_arbiter = Arbiter(policy, honest, initial_credits);
    auto honest_trace = scheduler.Run(honest, honest_arbiter.get());
    auto lying_arbiter = Arbiter(policy, lying, initial_credits);
    auto lying_trace = scheduler.Run(lying, lying_arbiter.get());
    EXPECT_TRUE(honest_trace.ok());
    EXPECT_TRUE(lying_trace.ok());
    return LiarsGain(ComputeTenantMetrics(honest_trace.value(), kPool),
                     ComputeTenantMetrics(lying_trace.value(), kPool), kLiar);
  }
};

TEST(ArbiterStrategyProofnessTest, WelfareMaxRewardsInflatedRequests) {
  // The documented exploit: welfare-max trusts the reported demand, so
  // the liar's bigger cap wins it more tokens and a strictly better
  // latency. The gain must clear the bound Karma is held to below.
  CanonicalTrace trace;
  double welfare_gain = trace.Gain(ArbiterPolicy::kWelfareMax, 800.0);
  EXPECT_GT(welfare_gain, 0.10);  // Measured 0.125 on the canonical trace.
}

TEST(ArbiterStrategyProofnessTest, KarmaBoundsTheLiarsGain) {
  // Karma prices the same inflation in credits: after the endowment is
  // spent, the liar collapses back to its fair share. Its gain stays
  // under a fixed bound strictly below the welfare-max exploit.
  CanonicalTrace trace;
  double karma_gain = trace.Gain(ArbiterPolicy::kKarma, 800.0);
  double welfare_gain = trace.Gain(ArbiterPolicy::kWelfareMax, 800.0);
  // Measured: karma 0.042 vs welfare 0.125. The bound sits between the
  // two so either policy drifting across it fails loudly.
  EXPECT_LT(karma_gain, 0.08);
  EXPECT_LT(karma_gain, welfare_gain);
}

}  // namespace
}  // namespace tasq
