#include "common/arena.h"

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace tasq {
namespace {

TEST(ArenaTest, AllocReturnsAlignedDistinctPointers) {
  Arena arena;
  void* a = arena.Alloc(24);
  void* b = arena.Alloc(8, 64);
  void* c = arena.Alloc(1, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) %
                alignof(std::max_align_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(arena.bytes_used(), 24u + 8u + 1u);
}

TEST(ArenaTest, NewConstructsWithArguments) {
  struct Point {
    double x, y;
  };
  Arena arena;
  Point* p = arena.New<Point>(Point{3.0, 4.0});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->x, 3.0);
  EXPECT_EQ(p->y, 4.0);
}

TEST(ArenaTest, NewArrayOfArithmeticIsZeroed) {
  Arena arena;
  double* xs = arena.NewArray<double>(256);
  for (size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(xs[i], 0.0) << i;
  }
}

TEST(ArenaTest, GrowsAcrossBlockBoundary) {
  Arena arena(/*block_bytes=*/128);
  for (int i = 0; i < 100; ++i) {
    int* p = arena.New<int>(i);
    ASSERT_EQ(*p, i);
  }
  EXPECT_GT(arena.block_count(), 1u);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/64);
  char* big = static_cast<char*>(arena.Alloc(4096));
  ASSERT_NE(big, nullptr);
  big[0] = 'x';
  big[4095] = 'y';
  EXPECT_EQ(big[0], 'x');
  EXPECT_EQ(big[4095], 'y');
}

TEST(ArenaTest, ResetReusesBlocksWithoutGrowth) {
  Arena arena(/*block_bytes=*/1024);
  // Warm up: force a couple of blocks into existence.
  for (int round = 0; round < 3; ++round) {
    arena.Reset();
    for (int i = 0; i < 400; ++i) {
      arena.New<int64_t>(i);
    }
  }
  size_t warm_blocks = arena.block_count();
  EXPECT_GE(warm_blocks, 2u);
  // Steady state: identical traffic must not acquire new blocks.
  for (int round = 0; round < 16; ++round) {
    arena.Reset();
    for (int i = 0; i < 400; ++i) {
      arena.New<int64_t>(i);
    }
    ASSERT_EQ(arena.block_count(), warm_blocks) << "round " << round;
  }
}

TEST(ArenaTest, ResetRewindsBytesUsed) {
  Arena arena;
  arena.Alloc(100);
  EXPECT_EQ(arena.bytes_used(), 100u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  arena.Alloc(10);
  EXPECT_EQ(arena.bytes_used(), 10u);
}

TEST(ArenaTest, NewObjectRunsRegisteredDtorsNewestFirstOnReset) {
  struct Tracker {
    std::vector<int>* log;  // own: borrowed test-local log outlives arena
    int id;
    ~Tracker() { log->push_back(id); }
  };
  std::vector<int> log;
  Arena arena;
  arena.NewObject<Tracker>(Tracker{&log, 1});
  arena.NewObject<Tracker>(Tracker{&log, 2});
  arena.NewObject<Tracker>(Tracker{&log, 3});
  // The moved-from temporaries above also log on scope exit; clear so
  // only the arena-registered destructions are observed.
  log.clear();
  arena.Reset();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 3);
  EXPECT_EQ(log[1], 2);
  EXPECT_EQ(log[2], 1);
  // Reset cleared the registrations: a second Reset must not re-run.
  log.clear();
  arena.Reset();
  EXPECT_TRUE(log.empty());
}

TEST(ArenaTest, NewObjectDtorsRunAtDestruction) {
  std::vector<int> log;
  struct Tracker {
    std::vector<int>* log;  // own: borrowed test-local log outlives arena
    int id;
    ~Tracker() { log->push_back(id); }
  };
  {
    Arena arena;
    arena.NewObject<Tracker>(Tracker{&log, 7});
    log.clear();
  }
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 7);
}

TEST(ArenaVectorTest, ReserveFillReadBack) {
  ScratchArena scratch;
  ArenaVector<double> v = scratch.MakeVector<double>();
  v.reserve(512);
  for (int i = 0; i < 512; ++i) {
    v.push_back(i * 0.5);
  }
  double sum = std::accumulate(v.begin(), v.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * (511.0 * 512.0 / 2.0));
}

TEST(ArenaVectorTest, SteadyStateLoopKeepsBlockCountFlat) {
  ScratchArena scratch(/*block_bytes=*/4096);
  size_t warm_blocks = 0;
  for (int round = 0; round < 20; ++round) {
    scratch.Reset();
    ArenaVector<int> v = scratch.MakeVector<int>();
    v.reserve(256);
    for (int i = 0; i < 256; ++i) {
      v.push_back(i);
    }
    if (round == 4) {
      warm_blocks = scratch.arena().block_count();
    }
    if (round > 4) {
      ASSERT_EQ(scratch.arena().block_count(), warm_blocks)
          << "round " << round;
    }
  }
}

TEST(ArenaStringTest, BuildsFromArenaStorage) {
  ScratchArena scratch;
  ArenaString s = scratch.MakeString();
  for (int i = 0; i < 100; ++i) {
    s += "ab";
  }
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[199], 'b');
}

TEST(ScratchArenaTest, MakeVectorSizedIsValueInitialized) {
  ScratchArena scratch;
  ArenaVector<double> v = scratch.MakeVector<double>(64);
  ASSERT_EQ(v.size(), 64u);
  for (double x : v) {
    ASSERT_EQ(x, 0.0);
  }
}

}  // namespace
}  // namespace tasq
