#include <gtest/gtest.h>

#include <cmath>

#include "arepas/arepas.h"
#include "common/rng.h"

namespace tasq {
namespace {

TEST(ArepasTest, AllocationAtOrAbovePeakLeavesSkylineUnchanged) {
  Skyline original({2.0, 5.0, 3.0});
  Arepas arepas;
  Result<Skyline> at_peak = arepas.SimulateSkyline(original, 5.0);
  ASSERT_TRUE(at_peak.ok());
  EXPECT_EQ(at_peak.value(), original);
  Result<Skyline> above = arepas.SimulateSkyline(original, 100.0);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(above.value(), original);
}

TEST(ArepasTest, RejectsInvalidInput) {
  Arepas arepas;
  EXPECT_FALSE(arepas.SimulateSkyline(Skyline(), 5.0).ok());
  EXPECT_FALSE(arepas.SimulateSkyline(Skyline({1.0}), 0.0).ok());
  EXPECT_FALSE(arepas.SimulateSkyline(Skyline({1.0}), -3.0).ok());
}

TEST(ArepasTest, PaperFigure7Example) {
  // The paper's Figure 6/7 toy job: a tall section whose area is
  // redistributed at max token 3. A flat section at height 6 for 5 seconds
  // (30 token-seconds) becomes 10 seconds at height 3.
  std::vector<double> usage(20, 2.0);
  for (size_t t = 5; t < 10; ++t) usage[t] = 6.0;
  Skyline original(usage);
  Arepas arepas;
  Result<Skyline> simulated = arepas.SimulateSkyline(original, 3.0);
  ASSERT_TRUE(simulated.ok());
  // Original: 5s @2, 5s @6, 10s @2 -> simulated: 5s @2, 10s @3, 10s @2.
  EXPECT_EQ(simulated.value().duration_seconds(), 25u);
  EXPECT_DOUBLE_EQ(simulated.value().UsageAt(4), 2.0);
  EXPECT_DOUBLE_EQ(simulated.value().UsageAt(5), 3.0);
  EXPECT_DOUBLE_EQ(simulated.value().UsageAt(14), 3.0);
  EXPECT_DOUBLE_EQ(simulated.value().UsageAt(15), 2.0);
}

TEST(ArepasTest, ExactRoundingPreservesAreaExactly) {
  Skyline original({1.0, 7.0, 7.0, 2.0, 9.0, 1.0});
  Arepas arepas;
  for (double tokens : {1.0, 2.0, 3.0, 4.5, 6.0, 8.0}) {
    Result<Skyline> simulated = arepas.SimulateSkyline(original, tokens);
    ASSERT_TRUE(simulated.ok());
    EXPECT_NEAR(simulated.value().Area(), original.Area(), 1e-9)
        << "tokens=" << tokens;
  }
}

TEST(ArepasTest, SimulatedSkylineNeverExceedsAllocation) {
  Skyline original({4.0, 10.0, 3.0, 8.0});
  Arepas arepas;
  Result<Skyline> simulated = arepas.SimulateSkyline(original, 5.0);
  ASSERT_TRUE(simulated.ok());
  for (double v : simulated.value().values()) {
    EXPECT_LE(v, 5.0 + 1e-12);
  }
}

TEST(ArepasTest, UnderSectionsCopiedUnchanged) {
  // Leading and trailing under-threshold parts must appear verbatim.
  Skyline original({1.0, 2.0, 9.0, 9.0, 2.0, 1.0});
  Arepas arepas;
  Result<Skyline> simulated = arepas.SimulateSkyline(original, 3.0);
  ASSERT_TRUE(simulated.ok());
  const auto& v = simulated.value().values();
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[v.size() - 2], 2.0);
  EXPECT_DOUBLE_EQ(v[v.size() - 1], 1.0);
}

TEST(ArepasTest, RunTimeNonIncreasingInTokensUpToQuantization) {
  // More tokens can never lengthen the simulation beyond 1-second
  // quantization: raising the allocation can split one over-section into
  // two, and each stretched section rounds its length up to whole ticks, so
  // local increases are bounded by the number of sections.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> usage;
    size_t len = static_cast<size_t>(rng.UniformInt(5, 60));
    for (size_t t = 0; t < len; ++t) {
      usage.push_back(static_cast<double>(rng.UniformInt(0, 40)));
    }
    Skyline original(usage);
    Arepas arepas;
    double at_one = arepas.SimulateRunTimeSeconds(original, 1.0).value_or(-1);
    double previous = 1e18;
    for (double tokens = 1.0; tokens <= 41.0; tokens += 1.0) {
      double runtime =
          arepas.SimulateRunTimeSeconds(original, tokens).value_or(-1.0);
      ASSERT_GE(runtime, 0.0);
      size_t sections = SplitSections(original, tokens).size();
      EXPECT_LE(runtime, previous + static_cast<double>(sections))
          << "trial=" << trial << " tokens=" << tokens;
      // Globally the trend must still point down.
      EXPECT_LE(runtime, at_one + 1e-9);
      previous = runtime;
    }
    // And the endpoints are strictly ordered for skylines with real peaks.
    double at_peak =
        arepas.SimulateRunTimeSeconds(original, original.Peak()).value_or(-1);
    EXPECT_LE(at_peak, at_one);
  }
}

TEST(ArepasTest, FloorRoundingMatchesPaperPseudocode) {
  // One over section of area 10 at allocation 3: floor(10/3) = 3 ticks.
  Skyline original({10.0});
  Arepas floor_sim(ArepasOptions{AreaRounding::kFloor});
  Result<Skyline> simulated = floor_sim.SimulateSkyline(original, 3.0);
  ASSERT_TRUE(simulated.ok());
  EXPECT_EQ(simulated.value().duration_seconds(), 3u);
  for (double v : simulated.value().values()) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(ArepasTest, CeilRoundingRoundsUp) {
  Skyline original({10.0});
  Arepas ceil_sim(ArepasOptions{AreaRounding::kCeil});
  Result<Skyline> simulated = ceil_sim.SimulateSkyline(original, 3.0);
  ASSERT_TRUE(simulated.ok());
  EXPECT_EQ(simulated.value().duration_seconds(), 4u);
  for (double v : simulated.value().values()) EXPECT_DOUBLE_EQ(v, 3.0);
}

TEST(ArepasTest, ExactRoundingFractionalTail) {
  Skyline original({10.0});
  Arepas arepas;
  Result<Skyline> simulated = arepas.SimulateSkyline(original, 3.0);
  ASSERT_TRUE(simulated.ok());
  ASSERT_EQ(simulated.value().duration_seconds(), 4u);
  EXPECT_DOUBLE_EQ(simulated.value().UsageAt(3), 1.0);
  EXPECT_NEAR(simulated.value().Area(), 10.0, 1e-12);
}

TEST(SamplePccTest, ProducesMonotoneCurve) {
  Skyline original({2.0, 20.0, 20.0, 5.0, 15.0, 1.0});
  auto grid = LinearTokenGrid(2.0, 20.0, 10);
  Result<std::vector<PccSample>> samples = SamplePcc(original, grid);
  ASSERT_TRUE(samples.ok());
  ASSERT_EQ(samples.value().size(), 10u);
  for (size_t i = 1; i < samples.value().size(); ++i) {
    EXPECT_LE(samples.value()[i].runtime_seconds,
              samples.value()[i - 1].runtime_seconds + 1e-9);
  }
}

TEST(SamplePccTest, FailsOnNonPositiveGridEntry) {
  Skyline original({2.0, 3.0});
  EXPECT_FALSE(SamplePcc(original, {1.0, 0.0}).ok());
}

TEST(LinearTokenGridTest, SpansRangeInclusive) {
  auto grid = LinearTokenGrid(10.0, 50.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 10.0);
  EXPECT_DOUBLE_EQ(grid.back(), 50.0);
  EXPECT_DOUBLE_EQ(grid[1], 20.0);
}

TEST(LinearTokenGridTest, RejectsDegenerateInput) {
  EXPECT_TRUE(LinearTokenGrid(10.0, 50.0, 1).empty());
  EXPECT_TRUE(LinearTokenGrid(0.0, 50.0, 5).empty());
  EXPECT_TRUE(LinearTokenGrid(50.0, 10.0, 5).empty());
}

TEST(AreaDeviationTest, SymmetricPercentDifference) {
  Skyline a({10.0});
  Skyline b({12.0});
  // |10-12| / 11 * 100.
  EXPECT_NEAR(AreaDeviationPercent(a, b), 200.0 / 11.0, 1e-9);
  EXPECT_NEAR(AreaDeviationPercent(b, a), AreaDeviationPercent(a, b), 1e-12);
  EXPECT_DOUBLE_EQ(AreaDeviationPercent(Skyline(), Skyline()), 0.0);
}

TEST(PairwiseAreaDeviationsTest, AllPairs) {
  std::vector<Skyline> runs = {Skyline({10.0}), Skyline({10.0}),
                               Skyline({20.0})};
  auto devs = PairwiseAreaDeviations(runs);
  ASSERT_EQ(devs.size(), 3u);  // C(3,2).
}

TEST(CountAreaOutliersTest, FlagsTheOddOneOut) {
  std::vector<Skyline> runs = {Skyline({10.0}), Skyline({10.5}),
                               Skyline({9.8}), Skyline({30.0})};
  EXPECT_EQ(CountAreaOutliers(runs, 20.0), 1);
  EXPECT_EQ(CountAreaOutliers(runs, 300.0), 0);
}

TEST(CountAreaOutliersTest, FewerThanTwoExecutions) {
  EXPECT_EQ(CountAreaOutliers({}, 10.0), 0);
  EXPECT_EQ(CountAreaOutliers({Skyline({5.0})}, 10.0), 0);
}

}  // namespace
}  // namespace tasq
