#include <gtest/gtest.h>

#include <cmath>

#include "baselines/autotoken.h"
#include "common/stats.h"
#include "baselines/stage_simulators.h"
#include "workload/generator.h"

namespace tasq {
namespace {

Job RecurringJob(int template_id, int tasks, double duration) {
  Job job;
  job.id = template_id * 100;
  job.template_id = template_id;
  job.recurring = true;
  job.plan.stages.push_back(StageSpec{0, {}, tasks, duration});
  return job;
}

TEST(StageHistoryTest, RecordsRunningMeans) {
  StageHistory history;
  ASSERT_TRUE(history.Record(RecurringJob(1, 10, 4.0)).ok());
  ASSERT_TRUE(history.Record(RecurringJob(1, 20, 8.0)).ok());
  Result<JobHistoryStats> stats = history.Lookup(RecurringJob(1, 1, 1.0));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().runs_observed, 2);
  ASSERT_EQ(stats.value().stages.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.value().stages[0].mean_tasks, 15.0);
  EXPECT_DOUBLE_EQ(stats.value().stages[0].mean_task_seconds, 6.0);
}

TEST(StageHistoryTest, AdhocJobsHaveNoHistory) {
  StageHistory history;
  Job adhoc = RecurringJob(-1, 10, 4.0);
  adhoc.template_id = -1;
  EXPECT_FALSE(history.Record(adhoc).ok());
  EXPECT_FALSE(history.Lookup(adhoc).ok());
  EXPECT_EQ(history.Lookup(RecurringJob(9, 1, 1.0)).status().code(),
            StatusCode::kNotFound);
}

TEST(AmdahlSimulatorTest, MatchesClosedForm) {
  JobHistoryStats stats;
  stats.stages.push_back(StageStats{10.0, 5.0});  // S=5, P=45.
  Result<double> at4 = AmdahlSimulateRunTime(stats, 4.0);
  ASSERT_TRUE(at4.ok());
  EXPECT_DOUBLE_EQ(at4.value(), 5.0 + 45.0 / 4.0);
  // Serial floor as N grows.
  Result<double> at1e6 = AmdahlSimulateRunTime(stats, 1e6);
  ASSERT_TRUE(at1e6.ok());
  EXPECT_NEAR(at1e6.value(), 5.0, 1e-3);
}

TEST(JockeySimulatorTest, WaveModel) {
  JobHistoryStats stats;
  stats.stages.push_back(StageStats{10.0, 3.0});
  // 4 tokens -> ceil(10/4)=3 waves of 3s.
  Result<double> runtime = JockeySimulateRunTime(stats, 4.0);
  ASSERT_TRUE(runtime.ok());
  EXPECT_DOUBLE_EQ(runtime.value(), 9.0);
}

TEST(StageSimulatorsTest, BothMonotoneNonIncreasing) {
  JobHistoryStats stats;
  stats.stages.push_back(StageStats{30.0, 4.0});
  stats.stages.push_back(StageStats{8.0, 10.0});
  double prev_amdahl = 1e300;
  double prev_jockey = 1e300;
  for (double tokens = 1.0; tokens <= 64.0; tokens *= 2.0) {
    double amdahl = AmdahlSimulateRunTime(stats, tokens).value();
    double jockey = JockeySimulateRunTime(stats, tokens).value();
    EXPECT_LE(amdahl, prev_amdahl + 1e-9);
    EXPECT_LE(jockey, prev_jockey + 1e-9);
    prev_amdahl = amdahl;
    prev_jockey = jockey;
  }
}

TEST(StageSimulatorsTest, RejectBadInput) {
  JobHistoryStats empty;
  EXPECT_FALSE(AmdahlSimulateRunTime(empty, 4.0).ok());
  EXPECT_FALSE(JockeySimulateRunTime(empty, 4.0).ok());
  JobHistoryStats stats;
  stats.stages.push_back(StageStats{10.0, 5.0});
  EXPECT_FALSE(AmdahlSimulateRunTime(stats, 0.5).ok());
  EXPECT_FALSE(JockeySimulateRunTime(stats, 0.0).ok());
}

TEST(StageSimulatorsTest, ReasonableAgainstGroundTruthForRecurringJobs) {
  // With history from two noiseless prior runs, both baselines should
  // track the true runtime of a recurrence within a modest factor.
  WorkloadConfig config;
  config.seed = 61;
  config.recurring_fraction = 1.0;
  WorkloadGenerator generator(config);
  ClusterSimulator simulator;
  StageHistory history;
  std::map<int, std::vector<Job>> by_template;
  for (const Job& job : generator.Generate(0, 250)) {
    by_template[job.template_id].push_back(job);
  }
  int evaluated = 0;
  for (auto& [tmpl, jobs] : by_template) {
    if (jobs.size() < 3) continue;
    // Record the first two runs, evaluate the third. Recurrences may have
    // a different stage count under drift (branch pruning); skip those.
    if (jobs[0].plan.stages.size() != jobs[2].plan.stages.size()) continue;
    ASSERT_TRUE(history.Record(jobs[0]).ok());
    ASSERT_TRUE(history.Record(jobs[1]).ok());
    const Job& target = jobs[2];
    auto stats = history.Lookup(target);
    if (!stats.ok()) continue;
    double tokens = std::max(2.0, target.default_tokens / 2.0);
    auto truth = simulator.Run(target.plan, RunConfig{tokens, {}, 0});
    ASSERT_TRUE(truth.ok());
    for (double predicted :
         {AmdahlSimulateRunTime(stats.value(), tokens).value_or(-1),
          JockeySimulateRunTime(stats.value(), tokens).value_or(-1)}) {
      ASSERT_GT(predicted, 0.0);
      double ratio = predicted / truth.value().runtime_seconds;
      EXPECT_GT(ratio, 0.2);
      EXPECT_LT(ratio, 5.0);
    }
    ++evaluated;
    if (evaluated >= 10) break;
  }
  EXPECT_GE(evaluated, 3);
}

TEST(AutoTokenTest, PredictsPeakForCoveredGroups) {
  WorkloadConfig config;
  config.seed = 62;
  config.recurring_fraction = 1.0;
  config.num_templates = 10;
  WorkloadGenerator generator(config);
  auto observed =
      ObserveWorkload(generator.Generate(0, 200), NoiseModel{}, 1).value();
  AutoToken autotoken;
  ASSERT_TRUE(autotoken.Train(observed).ok());
  EXPECT_GT(autotoken.num_groups(), 5u);

  // Predictions for fresh recurrences of covered templates are within a
  // reasonable band of the realized peak.
  auto test = ObserveWorkload(generator.Generate(500, 40), NoiseModel{}, 2)
                  .value();
  int covered = 0;
  std::vector<double> ratios;
  for (const ObservedJob& entry : test) {
    Result<double> predicted = autotoken.PredictPeakTokens(entry.job);
    if (!predicted.ok()) continue;
    ++covered;
    ratios.push_back(predicted.value() / std::max(1.0, entry.peak_tokens));
  }
  ASSERT_GT(covered, 20);
  EXPECT_GT(Median(ratios), 0.4);
  EXPECT_LT(Median(ratios), 2.5);
}

TEST(AutoTokenTest, DoesNotCoverAdhocJobs) {
  WorkloadConfig config;
  config.seed = 63;
  config.recurring_fraction = 0.5;
  WorkloadGenerator generator(config);
  auto observed =
      ObserveWorkload(generator.Generate(0, 150), NoiseModel{}, 1).value();
  AutoToken autotoken;
  ASSERT_TRUE(autotoken.Train(observed).ok());
  int adhoc_rejected = 0;
  for (const Job& job : generator.Generate(700, 60)) {
    if (!job.recurring) {
      EXPECT_FALSE(autotoken.PredictPeakTokens(job).ok());
      ++adhoc_rejected;
    }
  }
  EXPECT_GT(adhoc_rejected, 10);
}

TEST(AutoTokenTest, FailsCleanlyUntrainedAndEmpty) {
  AutoToken autotoken;
  EXPECT_FALSE(autotoken.Train({}).ok());
  Job job;
  job.template_id = 0;
  EXPECT_FALSE(autotoken.PredictPeakTokens(job).ok());
}

}  // namespace
}  // namespace tasq
