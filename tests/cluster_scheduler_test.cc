#include <gtest/gtest.h>

#include "simcluster/cluster_scheduler.h"
#include "workload/generator.h"

namespace tasq {
namespace {

JobPlan TinyPlan(int tasks, double duration) {
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, tasks, duration});
  return plan;
}

Submission MakeSubmission(int64_t id, double arrival, double tokens,
                          JobPlan plan) {
  Submission submission;
  submission.job_id = id;
  submission.arrival_seconds = arrival;
  submission.requested_tokens = tokens;
  submission.plan = std::move(plan);
  return submission;
}

TEST(ClusterSchedulerTest, SingleJobStartsImmediately) {
  ClusterScheduler scheduler(SchedulerConfig{100.0, false, {}, 0});
  auto trace = scheduler.Run({MakeSubmission(1, 5.0, 10.0, TinyPlan(10, 3.0))});
  ASSERT_TRUE(trace.ok());
  const ScheduledJob& job = trace.value()[0];
  EXPECT_DOUBLE_EQ(job.start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(job.wait_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(job.runtime_seconds, 3.0);
  EXPECT_DOUBLE_EQ(job.finish_seconds, 8.0);
}

TEST(ClusterSchedulerTest, QueuesWhenPoolExhausted) {
  // Pool of 10: two jobs of 10 tokens each must run back to back.
  ClusterScheduler scheduler(SchedulerConfig{10.0, false, {}, 0});
  auto trace = scheduler.Run({
      MakeSubmission(1, 0.0, 10.0, TinyPlan(10, 5.0)),
      MakeSubmission(2, 0.0, 10.0, TinyPlan(10, 5.0)),
  });
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace.value()[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(trace.value()[1].start_seconds, 5.0);
  EXPECT_DOUBLE_EQ(trace.value()[1].wait_seconds(), 5.0);
}

TEST(ClusterSchedulerTest, ParallelAdmissionWhenPoolAllows) {
  ClusterScheduler scheduler(SchedulerConfig{20.0, false, {}, 0});
  auto trace = scheduler.Run({
      MakeSubmission(1, 0.0, 10.0, TinyPlan(10, 5.0)),
      MakeSubmission(2, 0.0, 10.0, TinyPlan(10, 5.0)),
  });
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace.value()[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(trace.value()[1].start_seconds, 0.0);
}

TEST(ClusterSchedulerTest, StrictFifoHeadOfLineBlocking) {
  // Job 2 needs 15 tokens; job 3 needs 2 and could backfill, but strict
  // FIFO makes it wait behind job 2.
  ClusterScheduler scheduler(SchedulerConfig{20.0, false, {}, 0});
  auto trace = scheduler.Run({
      MakeSubmission(1, 0.0, 10.0, TinyPlan(10, 10.0)),
      MakeSubmission(2, 1.0, 15.0, TinyPlan(15, 5.0)),
      MakeSubmission(3, 2.0, 2.0, TinyPlan(2, 1.0)),
  });
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace.value()[1].start_seconds, 10.0);
  EXPECT_GE(trace.value()[2].start_seconds, 10.0);
}

TEST(ClusterSchedulerTest, SmallerRequestsReduceWaits) {
  // The paper's §1 claim at cluster level: halving requests (at some
  // runtime cost) cuts queueing delay for a congested trace.
  WorkloadConfig config;
  config.seed = 3;
  WorkloadGenerator generator(config);
  std::vector<Submission> full;
  std::vector<Submission> halved;
  double arrival = 0.0;
  for (const Job& job : generator.Generate(0, 40)) {
    arrival += 5.0;
    double request = std::min(300.0, job.default_tokens);
    full.push_back(MakeSubmission(job.id, arrival, request, job.plan));
    halved.push_back(MakeSubmission(
        job.id, arrival, std::max(1.0, std::round(request / 2.0)), job.plan));
  }
  ClusterScheduler scheduler(SchedulerConfig{300.0, false, {}, 0});
  auto full_trace = scheduler.Run(full);
  auto halved_trace = scheduler.Run(halved);
  ASSERT_TRUE(full_trace.ok());
  ASSERT_TRUE(halved_trace.ok());
  TraceSummary full_summary = SummarizeTrace(full_trace.value(), 300.0);
  TraceSummary halved_summary = SummarizeTrace(halved_trace.value(), 300.0);
  EXPECT_LT(halved_summary.mean_wait_seconds, full_summary.mean_wait_seconds);
}

TEST(ClusterSchedulerTest, AdaptiveReleaseUnblocksQueuedJobs) {
  // Job 1 is peaky: a 10-wide stage for 5s, then a 1-wide stage for 20s.
  // With adaptive release its 9 idle tokens return after the first stage,
  // letting job 2 (9 tokens) start long before job 1 finishes.
  JobPlan peaky;
  peaky.stages.push_back(StageSpec{0, {}, 10, 5.0});
  peaky.stages.push_back(StageSpec{1, {0}, 1, 20.0});
  JobPlan small = TinyPlan(9, 2.0);

  SchedulerConfig strict{10.0, false, {}, 0};
  SchedulerConfig adaptive{10.0, true, {}, 0};
  std::vector<Submission> submissions = {
      MakeSubmission(1, 0.0, 10.0, peaky),
      MakeSubmission(2, 1.0, 9.0, small),
  };
  auto strict_trace = ClusterScheduler(strict).Run(submissions);
  auto adaptive_trace = ClusterScheduler(adaptive).Run(submissions);
  ASSERT_TRUE(strict_trace.ok());
  ASSERT_TRUE(adaptive_trace.ok());
  // Strict: job 2 waits for the full 25s run of job 1.
  EXPECT_DOUBLE_EQ(strict_trace.value()[1].start_seconds, 25.0);
  // Adaptive: job 2 starts shortly after job 1's wide stage ends.
  EXPECT_LT(adaptive_trace.value()[1].start_seconds, 8.0);
  EXPECT_GT(adaptive_trace.value()[1].start_seconds, 4.0);
}

TEST(ClusterSchedulerTest, AdaptiveReleaseConservesTokens) {
  // After everything finishes, all released tokens must add back to the
  // pool: a subsequent full-pool job can still be admitted.
  SchedulerConfig adaptive{10.0, true, {}, 0};
  JobPlan peaky;
  peaky.stages.push_back(StageSpec{0, {}, 10, 3.0});
  peaky.stages.push_back(StageSpec{1, {0}, 2, 4.0});
  auto trace = ClusterScheduler(adaptive).Run({
      MakeSubmission(1, 0.0, 10.0, peaky),
      MakeSubmission(2, 0.0, 10.0, TinyPlan(10, 2.0)),
      MakeSubmission(3, 0.0, 10.0, TinyPlan(10, 2.0)),
  });
  ASSERT_TRUE(trace.ok());
  for (const ScheduledJob& job : trace.value()) {
    EXPECT_GT(job.runtime_seconds, 0.0);
    EXPECT_GE(job.start_seconds, 0.0);
  }
  // The last job cannot start before both predecessors' releases sum back
  // to a full pool; it must still run.
  EXPECT_GT(trace.value()[2].finish_seconds,
            trace.value()[2].start_seconds);
}

TEST(ClusterSchedulerTest, RejectsOversizedOrInvalidSubmissions) {
  ClusterScheduler scheduler(SchedulerConfig{10.0, false, {}, 0});
  EXPECT_FALSE(
      scheduler.Run({MakeSubmission(1, 0.0, 11.0, TinyPlan(1, 1.0))}).ok());
  EXPECT_FALSE(
      scheduler.Run({MakeSubmission(1, 0.0, 0.5, TinyPlan(1, 1.0))}).ok());
  EXPECT_FALSE(scheduler.Run({MakeSubmission(1, 0.0, 5.0, JobPlan{})}).ok());
}

TEST(ClusterSchedulerTest, SummaryStatistics) {
  ClusterScheduler scheduler(SchedulerConfig{10.0, false, {}, 0});
  auto trace = scheduler.Run({
      MakeSubmission(1, 0.0, 10.0, TinyPlan(10, 4.0)),
      MakeSubmission(2, 0.0, 10.0, TinyPlan(10, 4.0)),
  });
  ASSERT_TRUE(trace.ok());
  TraceSummary summary = SummarizeTrace(trace.value(), 10.0);
  EXPECT_DOUBLE_EQ(summary.mean_wait_seconds, 2.0);  // 0 and 4.
  EXPECT_DOUBLE_EQ(summary.mean_runtime_seconds, 4.0);
  EXPECT_DOUBLE_EQ(summary.span_seconds, 8.0);
  EXPECT_NEAR(summary.mean_reserved_fraction, 1.0, 1e-9);
  // Empty trace is harmless.
  TraceSummary empty = SummarizeTrace({}, 10.0);
  EXPECT_DOUBLE_EQ(empty.span_seconds, 0.0);
}

TEST(ClusterSchedulerTest, SummarizeTraceDegenerateInputs) {
  // Empty trace: every field is zero, no division happens (the fpe leg
  // runs this with FE_INVALID trapping, so a 0/0 would SIGFPE).
  TraceSummary empty = SummarizeTrace({}, 10.0);
  EXPECT_DOUBLE_EQ(empty.mean_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(empty.median_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95_wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_runtime_seconds, 0.0);
  EXPECT_DOUBLE_EQ(empty.span_seconds, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_reserved_fraction, 0.0);

  // A non-positive pool cannot be divided by either.
  ScheduledJob job;
  job.arrival_seconds = 1.0;
  job.start_seconds = 2.0;
  job.finish_seconds = 5.0;
  job.runtime_seconds = 3.0;
  job.requested_tokens = 4.0;
  EXPECT_DOUBLE_EQ(SummarizeTrace({job}, 0.0).mean_reserved_fraction, 0.0);

  // Single zero-runtime job: span is zero, so the reserved fraction must
  // stay zero instead of dividing 0/0; percentile indexing on the
  // one-element wait vector is in range.
  ScheduledJob instant;
  instant.arrival_seconds = 3.0;
  instant.start_seconds = 3.0;
  instant.finish_seconds = 3.0;
  instant.runtime_seconds = 0.0;
  instant.requested_tokens = 2.0;
  TraceSummary summary = SummarizeTrace({instant}, 10.0);
  EXPECT_DOUBLE_EQ(summary.span_seconds, 0.0);
  EXPECT_DOUBLE_EQ(summary.mean_reserved_fraction, 0.0);
  EXPECT_DOUBLE_EQ(summary.p95_wait_seconds, 0.0);
}

TEST(ClusterSchedulerTest, SummarizeTraceSingleJob) {
  ScheduledJob job;
  job.arrival_seconds = 0.0;
  job.start_seconds = 2.0;
  job.finish_seconds = 6.0;
  job.runtime_seconds = 4.0;
  job.requested_tokens = 5.0;
  TraceSummary summary = SummarizeTrace({job}, 10.0);
  EXPECT_DOUBLE_EQ(summary.mean_wait_seconds, 2.0);
  EXPECT_DOUBLE_EQ(summary.median_wait_seconds, 2.0);
  EXPECT_DOUBLE_EQ(summary.p95_wait_seconds, 2.0);
  EXPECT_DOUBLE_EQ(summary.span_seconds, 6.0);
  // 5 tokens * 4 s over a pool of 10 across 6 s of span.
  EXPECT_NEAR(summary.mean_reserved_fraction, 20.0 / 60.0, 1e-12);
}

TEST(ClusterSchedulerTest, SummarizeTraceUsesGrantedTokensWhenPresent) {
  // Arbiter traces hold the grant, not the request: reservation
  // accounting must weight by granted_tokens when it is set.
  ScheduledJob job;
  job.arrival_seconds = 0.0;
  job.start_seconds = 0.0;
  job.finish_seconds = 4.0;
  job.runtime_seconds = 4.0;
  job.requested_tokens = 8.0;
  job.granted_tokens = 2.0;
  TraceSummary summary = SummarizeTrace({job}, 10.0);
  EXPECT_NEAR(summary.mean_reserved_fraction, 8.0 / 40.0, 1e-12);
}

TEST(ClusterSchedulerTest, ResultsInSubmissionOrder) {
  ClusterScheduler scheduler(SchedulerConfig{50.0, false, {}, 0});
  auto trace = scheduler.Run({
      MakeSubmission(7, 3.0, 5.0, TinyPlan(5, 1.0)),
      MakeSubmission(9, 1.0, 5.0, TinyPlan(5, 1.0)),
  });
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value()[0].job_id, 7);
  EXPECT_EQ(trace.value()[1].job_id, 9);
  // The earlier arrival started earlier despite later submission order.
  EXPECT_LT(trace.value()[1].start_seconds, trace.value()[0].start_seconds);
}

}  // namespace
}  // namespace tasq
