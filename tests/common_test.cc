#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"

namespace tasq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tokens");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tokens");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, ToStringPropagatesMessageForEveryFactory) {
  EXPECT_EQ(Status::InvalidArgument("a").ToString(), "InvalidArgument: a");
  EXPECT_EQ(Status::FailedPrecondition("b").ToString(),
            "FailedPrecondition: b");
  EXPECT_EQ(Status::NotFound("c").ToString(), "NotFound: c");
  EXPECT_EQ(Status::OutOfRange("d").ToString(), "OutOfRange: d");
  EXPECT_EQ(Status::Internal("e").ToString(), "Internal: e");
  EXPECT_EQ(Status::Ok().ToString(), "Ok");
}

TEST(StatusTest, MessageSurvivesCopyAndMove) {
  Status original = Status::Internal("solver diverged");
  Status copy = original;
  EXPECT_EQ(copy.message(), "solver diverged");
  Status moved = std::move(original);
  EXPECT_EQ(moved.message(), "solver diverged");
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValueMovesOut) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.value(), 7);  // Lvalue access does not consume the value.
  std::unique_ptr<int> taken = std::move(r).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);
}

TEST(ResultTest, MoveOnlyErrorPath) {
  Result<std::unique_ptr<int>> r(Status::OutOfRange("no curve"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.status().message(), "no curve");
}

TEST(ResultTest, MutableValueReferenceWritesThrough) {
  Result<int> r(1);
  ASSERT_TRUE(r.ok());
  r.value() = 99;
  EXPECT_EQ(r.value(), 99);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckPrintsExpressionAndAborts) {
  EXPECT_DEATH(TASQ_CHECK(1 + 1 == 3), "check failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, CheckCmpPrintsBothOperands) {
  int free_tokens = -2;
  EXPECT_DEATH(TASQ_CHECK_GE(free_tokens, 0),
               "free_tokens >= 0 \\(lhs=-2, rhs=0\\)");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(TASQ_CHECK_OK(Status::Internal("broken pool")),
               "Internal: broken pool");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  TASQ_CHECK(true);
  TASQ_CHECK_EQ(2, 2);
  TASQ_CHECK_LE(1.0, 2.0);
  TASQ_CHECK_OK(Status::Ok());
  TASQ_DCHECK(true);
  TASQ_DCHECK_NE(1, 2);
  SUCCEED();
}

#if TASQ_DCHECK_IS_ON
TEST(CheckDeathTest, DcheckAbortsWhenEnabled) {
  EXPECT_DEATH(TASQ_DCHECK_LT(5, 3), "5 < 3");
}
#else
TEST(CheckDeathTest, DcheckCompilesOutWhenDisabled) {
  TASQ_DCHECK_LT(5, 3);  // Must be a no-op, not an abort.
  SUCCEED();
}
#endif

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, ForkIsIndependentOfParentDraws) {
  Rng a(5);
  Rng b(5);
  // Consuming entropy from one parent must not change its fork's stream.
  a.Uniform(0.0, 1.0);
  a.Uniform(0.0, 1.0);
  Rng fa = a.Fork(9);
  Rng fb = b.Fork(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.UniformInt(0, 1 << 30), fb.UniformInt(0, 1 << 30));
  }
}

TEST(RngTest, DistinctForkTagsDiverge) {
  Rng root(5);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(1);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-2.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(77);
  std::vector<double> weights = {0.0, 10.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Categorical(weights), 1u);
  }
}

TEST(RngTest, CategoricalAllZeroIsUniform) {
  Rng rng(77);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) ++counts[rng.Categorical(weights)];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Median(v), 25.0);
}

TEST(StatsTest, MedianAbsolutePercentError) {
  std::vector<double> pred = {110.0, 90.0, 100.0};
  std::vector<double> act = {100.0, 100.0, 100.0};
  EXPECT_NEAR(MedianAbsolutePercentError(pred, act), 10.0, 1e-12);
  EXPECT_NEAR(MeanAbsolutePercentError(pred, act), 20.0 / 3.0, 1e-12);
}

TEST(StatsTest, PercentErrorsSkipZeroActuals) {
  std::vector<double> pred = {50.0, 110.0};
  std::vector<double> act = {0.0, 100.0};
  auto errs = AbsolutePercentErrors(pred, act);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NEAR(errs[0], 10.0, 1e-12);
}

TEST(StatsTest, KsStatisticIdenticalSamplesIsZero) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(KsStatistic(a, a), 0.0);
}

TEST(StatsTest, KsStatisticDisjointSamplesIsOne) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(KsStatistic(a, b), 1.0);
}

TEST(StatsTest, KsStatisticDetectsShift) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>(i) + 30.0);
  }
  double d = KsStatistic(a, b);
  EXPECT_GT(d, 0.25);
  EXPECT_LT(d, 0.4);
}

TEST(StatsTest, KsStatisticEmptySampleIsMaximal) {
  EXPECT_DOUBLE_EQ(KsStatistic({}, {1.0}), 1.0);
}

TEST(StatsTest, FitLineRecoversSlopeIntercept) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {5.0, 7.0, 9.0, 11.0};
  LineFit fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(StatsTest, FitLineRejectsDegenerateInput) {
  EXPECT_FALSE(FitLine({1.0}, {2.0}).ok);
  EXPECT_FALSE(FitLine({1.0, 1.0}, {2.0, 3.0}).ok);  // Constant x.
}

TEST(StatsTest, PearsonCorrelationSigns) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> up = {10.0, 20.0, 30.0};
  std::vector<double> down = {30.0, 20.0, 10.0};
  EXPECT_NEAR(PearsonCorrelation(x, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, down), -1.0, 1e-12);
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"Model", "Err"});
  t.AddRow({"NN", "0.5"});
  t.AddRow({"GNN", "0.25"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("GNN"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, CellFormatsNumbers) {
  EXPECT_EQ(Cell(3.14159, 2), "3.14");
  EXPECT_EQ(Cell(static_cast<int64_t>(42)), "42");
}

}  // namespace
}  // namespace tasq
