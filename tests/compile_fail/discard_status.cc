// Compile-FAIL fixture: discarding the result of a TASQ_NODISCARD
// function must be rejected (built with -Werror=unused-result by the
// harness in tests/compile_fail/CMakeLists.txt). The companion
// discard_status_ok.cc proves the harness itself compiles clean code.
#include "common/status.h"

TASQ_NODISCARD tasq::Status MightFail() {
  return tasq::Status::InvalidArgument("boom");
}

int main() {
  MightFail();  // Discarded Status: this line must not compile.
  return 0;
}
