// Compile-PASS control for discard_status.cc: identical shape, but the
// Status is consumed (and one discard is explicitly waived). If this file
// fails to build, the harness is misconfigured (bad include path, bad
// flags) and the "must fail" result of discard_status.cc proves nothing.
#include "common/status.h"

TASQ_NODISCARD tasq::Status MightFail() {
  return tasq::Status::InvalidArgument("boom");
}

int main() {
  (void)MightFail();  // compile-fail fixture: waiver syntax must build
  return MightFail().ok() ? 0 : 1;
}
