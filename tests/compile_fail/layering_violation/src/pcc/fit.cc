// Seeded violation: pcc declares no dependency on serve (see this
// fixture's scripts/arch_layers.toml), so this include must be flagged.
#include "serve/api.h"
int FitUsingServe() { return ServeApi(); }
