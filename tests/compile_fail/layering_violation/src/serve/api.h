#ifndef TASQ_SERVE_API_H_
#define TASQ_SERVE_API_H_
inline int ServeApi() { return 1; }
#endif  // TASQ_SERVE_API_H_
