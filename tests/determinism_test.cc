// Determinism golden tests: training the NN and GBDT models twice from the
// same seed, options, and data must yield byte-identical Serialize()
// streams. This pins down every source of nondeterminism that would break
// reproducible experiments — unordered-container iteration feeding into
// arithmetic, RNG reseeding from entropy, and accumulation-order drift.
// The suite name ("DeterminismTest") is part of the TSan ctest filter in
// scripts/check.sh and CI, so both runs also race-check the training path.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/text_io.h"
#include "gbdt/gbdt.h"
#include "nn/nn_model.h"
#include "nn/pcc_loss.h"

namespace tasq {
namespace {

// Synthetic PCC supervision with a known feature->(a, b) relationship;
// only repeatability matters here, not accuracy, so it stays tiny.
struct SyntheticSet {
  std::vector<double> features;
  PccSupervision supervision;
  size_t dim = 3;
};

SyntheticSet MakeSynthetic(size_t n, uint64_t seed) {
  SyntheticSet set;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double f0 = rng.Uniform(-1.0, 1.0);
    double f1 = rng.Uniform(-1.0, 1.0);
    double f2 = rng.Uniform(-1.0, 1.0);
    set.features.insert(set.features.end(), {f0, f1, f2});
    PowerLawPcc target;
    target.a = -(0.5 + 0.3 * f0 + 0.15 * f1);
    target.b = std::exp(6.0 + 1.2 * f2);
    set.supervision.targets.push_back(target);
    double tokens = std::exp(rng.Uniform(2.0, 5.0));
    set.supervision.observed_tokens.push_back(tokens);
    set.supervision.observed_runtime.push_back(target.EvalRunTime(tokens));
  }
  return set;
}

std::string TrainNnAndSerialize(const SyntheticSet& data) {
  NnOptions options;
  options.epochs = 25;
  options.hidden_sizes = {16, 8};
  options.seed = 11;
  NnPccModel model(data.dim, options);
  Result<double> loss = model.Train(data.features, data.supervision);
  EXPECT_TRUE(loss.ok()) << loss.status().ToString();
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  model.Serialize(writer);
  return stream.str();
}

TEST(DeterminismTest, NnTrainingIsBitReproducibleFromSeed) {
  SyntheticSet data = MakeSynthetic(200, 4);
  std::string first = TrainNnAndSerialize(data);
  std::string second = TrainNnAndSerialize(data);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "NN training from a fixed seed produced different weights";
}

std::string TrainGbdtAndSerialize(const std::vector<double>& features,
                                  size_t rows, size_t dim,
                                  const std::vector<double>& targets) {
  GbdtOptions options;
  options.num_trees = 40;
  options.max_depth = 4;
  options.subsample = 0.7;  // < 1 so the per-tree row sampler RNG is live.
  options.seed = 29;
  GbdtRegressor model(options);
  Status status = model.Train(features, rows, dim, targets);
  EXPECT_TRUE(status.ok()) << status.ToString();
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  model.Serialize(writer);
  return stream.str();
}

TEST(DeterminismTest, GbdtTrainingIsBitReproducibleFromSeed) {
  const size_t rows = 300;
  const size_t dim = 4;
  Rng rng(8);
  std::vector<double> features;
  std::vector<double> targets;
  features.reserve(rows * dim);
  for (size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      double v = rng.Uniform(0.0, 1.0);
      features.push_back(v);
      sum += v;
    }
    targets.push_back(std::exp(sum) + 0.1 * rng.Uniform(0.0, 1.0));
  }
  std::string first = TrainGbdtAndSerialize(features, rows, dim, targets);
  std::string second = TrainGbdtAndSerialize(features, rows, dim, targets);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "GBDT training from a fixed seed produced different trees";
}

}  // namespace
}  // namespace tasq
