// Direct tests of the evaluation module and of pipeline configuration
// variants (which models are trained, LF3 wiring, error paths).

#include <gtest/gtest.h>

#include "tasq/evaluation.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

namespace tasq {
namespace {

class EvalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 91;
    WorkloadGenerator generator(config);
    NoiseModel noise;
    noise.enabled = true;
    train_ = new std::vector<ObservedJob>(
        ObserveWorkload(generator.Generate(0, 80), noise, 1).value());
    test_ = new Dataset(
        DatasetBuilder()
            .Build(ObserveWorkload(generator.Generate(80, 20), noise, 2)
                       .value())
            .value());
  }
  static void TearDownTestSuite() {
    delete train_;
    delete test_;
    train_ = nullptr;
    test_ = nullptr;
  }

  static TasqOptions FastOptions() {
    TasqOptions options;
    options.nn.epochs = 5;
    options.gnn.epochs = 1;
    options.gnn.gcn_hidden = {8};
    options.gnn.head_hidden = {8};
    options.xgb.gbdt.num_trees = 10;
    return options;
  }

  static std::vector<ObservedJob>* train_;
  static Dataset* test_;
};

std::vector<ObservedJob>* EvalFixture::train_ = nullptr;
Dataset* EvalFixture::test_ = nullptr;

TEST_F(EvalFixture, XgbOnlyPipeline) {
  TasqOptions options = FastOptions();
  options.train_nn = false;
  options.train_gnn = false;
  Tasq pipeline(options);
  ASSERT_TRUE(pipeline.Train(*train_).ok());
  EXPECT_NE(pipeline.xgb(), nullptr);
  EXPECT_EQ(pipeline.nn(), nullptr);
  EXPECT_EQ(pipeline.gnn(), nullptr);
  // XGBoost metrics work; NN metrics fail cleanly.
  EXPECT_TRUE(EvaluateModel(pipeline, ModelKind::kXgboostPl, *test_).ok());
  Result<ModelEvalMetrics> nn = EvaluateModel(pipeline, ModelKind::kNn,
                                              *test_);
  EXPECT_FALSE(nn.ok());
  EXPECT_EQ(nn.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EvalFixture, NnOnlyPipelineRejectsLf3WithoutXgb) {
  TasqOptions options = FastOptions();
  options.train_xgb = false;
  options.train_gnn = false;
  options.nn.loss_form = LossForm::kLF3;
  Tasq pipeline(options);
  Status trained = pipeline.Train(*train_);
  EXPECT_FALSE(trained.ok());
  EXPECT_EQ(trained.code(), StatusCode::kFailedPrecondition);
}

TEST_F(EvalFixture, Lf3PipelineWiresXgbPredictionsIntoNn) {
  TasqOptions options = FastOptions();
  options.train_gnn = false;
  options.nn.loss_form = LossForm::kLF3;
  Tasq pipeline(options);
  EXPECT_TRUE(pipeline.Train(*train_).ok());
  EXPECT_TRUE(EvaluateModel(pipeline, ModelKind::kNn, *test_).ok());
}

TEST_F(EvalFixture, EvaluateModelValidatesInput) {
  Tasq untrained;
  EXPECT_FALSE(EvaluateModel(untrained, ModelKind::kNn, *test_).ok());
  TasqOptions options = FastOptions();
  options.train_gnn = false;
  Tasq pipeline(options);
  ASSERT_TRUE(pipeline.Train(*train_).ok());
  Dataset empty;
  EXPECT_FALSE(EvaluateModel(pipeline, ModelKind::kNn, empty).ok());
}

TEST_F(EvalFixture, PredictRuntimesAlignWithDataset) {
  TasqOptions options = FastOptions();
  options.train_gnn = false;
  Tasq pipeline(options);
  ASSERT_TRUE(pipeline.Train(*train_).ok());
  Result<std::vector<double>> predictions =
      PredictRuntimes(pipeline, ModelKind::kNn, *test_);
  ASSERT_TRUE(predictions.ok());
  ASSERT_EQ(predictions.value().size(), test_->size());
  for (double p : predictions.value()) EXPECT_GT(p, 0.0);
}

TEST_F(EvalFixture, MetricsAreInternallyConsistent) {
  TasqOptions options = FastOptions();
  Tasq pipeline(options);
  ASSERT_TRUE(pipeline.Train(*train_).ok());
  for (ModelKind kind : {ModelKind::kXgboostSs, ModelKind::kXgboostPl,
                         ModelKind::kNn, ModelKind::kGnn}) {
    Result<ModelEvalMetrics> metrics = EvaluateModel(pipeline, kind, *test_);
    ASSERT_TRUE(metrics.ok()) << ModelKindName(kind);
    EXPECT_GE(metrics.value().pattern_nonincrease_percent, 0.0);
    EXPECT_LE(metrics.value().pattern_nonincrease_percent, 100.0);
    EXPECT_GE(metrics.value().median_ae_runtime_percent, 0.0);
    EXPECT_EQ(metrics.value().jobs, test_->size());
    EXPECT_EQ(metrics.value().has_curve_params(),
              kind != ModelKind::kXgboostSs);
  }
}

}  // namespace
}  // namespace tasq
