#include <gtest/gtest.h>

#include <cmath>

#include "feat/featurizer.h"
#include "workload/generator.h"

namespace tasq {
namespace {

JobGraph TinyGraph() {
  JobGraph graph;
  OperatorNode extract;
  extract.id = 0;
  extract.op = PhysicalOperator::kExtract;
  extract.stage = 0;
  extract.features.output_cardinality = 1000.0;
  extract.features.leaf_input_cardinality = 1000.0;
  extract.features.children_input_cardinality = 1000.0;
  extract.features.average_row_length = 100.0;
  extract.features.cost_subtree = 50.0;
  extract.features.cost_exclusive = 50.0;
  extract.features.cost_total = 80.0;
  extract.features.num_partitions = 8;

  OperatorNode filter = extract;
  filter.id = 1;
  filter.op = PhysicalOperator::kFilter;
  filter.inputs = {0};
  filter.features.cost_exclusive = 30.0;
  filter.features.cost_subtree = 80.0;

  graph.operators = {extract, filter};
  return graph;
}

TEST(FeaturizerTest, OperatorRowLayout) {
  JobGraph graph = TinyGraph();
  std::vector<double> row(Featurizer::kOperatorFeatureDim);
  Featurizer::OperatorRow(graph.operators[0], row.data());
  EXPECT_NEAR(row[0], std::log1p(1000.0), 1e-12);  // Output cardinality.
  EXPECT_NEAR(row[3], std::log1p(100.0), 1e-12);   // Row length.
  EXPECT_NEAR(row[7], std::log1p(8.0), 1e-12);     // Partitions.
  // One-hot: Extract is enum 0.
  EXPECT_DOUBLE_EQ(row[10], 1.0);
  double onehot_sum = 0.0;
  for (size_t k = 10; k < 10 + kPhysicalOperatorCount; ++k) {
    onehot_sum += row[k];
  }
  EXPECT_DOUBLE_EQ(onehot_sum, 1.0);
  // No partitioning method set.
  for (size_t k = 10 + kPhysicalOperatorCount;
       k < Featurizer::kOperatorFeatureDim; ++k) {
    EXPECT_DOUBLE_EQ(row[k], 0.0);
  }
}

TEST(FeaturizerTest, PartitioningOneHot) {
  JobGraph graph = TinyGraph();
  graph.operators[1].partitioning = PartitioningMethod::kHash;
  std::vector<double> row(Featurizer::kOperatorFeatureDim);
  Featurizer::OperatorRow(graph.operators[1], row.data());
  size_t base = 10 + kPhysicalOperatorCount;
  EXPECT_DOUBLE_EQ(row[base + 0], 1.0);  // Hash is the first method.
  EXPECT_DOUBLE_EQ(row[base + 1], 0.0);
}

TEST(FeaturizerTest, JobLevelAggregation) {
  Featurizer featurizer;
  JobGraph graph = TinyGraph();
  Result<std::vector<double>> vec = featurizer.JobLevel(graph);
  ASSERT_TRUE(vec.ok());
  ASSERT_EQ(vec.value().size(), Featurizer::kJobFeatureDim);
  // Continuous features are means: both ops share output cardinality.
  EXPECT_NEAR(vec.value()[0], std::log1p(1000.0), 1e-12);
  // Categorical features are counts: one Extract, one Filter.
  EXPECT_DOUBLE_EQ(vec.value()[10 + 0], 1.0);
  EXPECT_DOUBLE_EQ(vec.value()[10 + 1], 1.0);
  // Operator and stage counts at the tail.
  EXPECT_DOUBLE_EQ(vec.value()[Featurizer::kOperatorFeatureDim], 2.0);
  EXPECT_DOUBLE_EQ(vec.value()[Featurizer::kOperatorFeatureDim + 1], 1.0);
}

TEST(FeaturizerTest, FeaturizeProducesConsistentShapes) {
  Featurizer featurizer;
  WorkloadGenerator generator(WorkloadConfig{});
  for (const Job& job : generator.Generate(0, 30)) {
    Result<JobFeatures> features = featurizer.Featurize(job.graph);
    ASSERT_TRUE(features.ok());
    size_t n = features.value().num_operators;
    EXPECT_EQ(n, job.graph.operators.size());
    EXPECT_EQ(features.value().op_matrix.size(),
              n * Featurizer::kOperatorFeatureDim);
    EXPECT_EQ(features.value().norm_adjacency.size(), n * n);
    EXPECT_EQ(features.value().job_vector.size(), Featurizer::kJobFeatureDim);
  }
}

TEST(FeaturizerTest, NormalizedAdjacencyIsSymmetricWithSelfLoops) {
  Featurizer featurizer;
  JobGraph graph = TinyGraph();
  Result<JobFeatures> features = featurizer.Featurize(graph);
  ASSERT_TRUE(features.ok());
  const auto& adj = features.value().norm_adjacency;
  size_t n = 2;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GT(adj[i * n + i], 0.0);  // Self loop.
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(adj[i * n + j], adj[j * n + i], 1e-12);
    }
  }
  // Two nodes with one edge: D = 2 for both, entries 1/2.
  EXPECT_NEAR(adj[0], 0.5, 1e-12);
  EXPECT_NEAR(adj[1], 0.5, 1e-12);
}

TEST(FeaturizerTest, RejectsInvalidGraph) {
  Featurizer featurizer;
  EXPECT_FALSE(featurizer.Featurize(JobGraph{}).ok());
  EXPECT_FALSE(featurizer.JobLevel(JobGraph{}).ok());
}

TEST(FeaturizerTest, JobFeatureNamesCoverAllIndices) {
  // Every in-range index has a specific, non-"unknown" name.
  for (size_t i = 0; i < Featurizer::kJobFeatureDim; ++i) {
    EXPECT_NE(Featurizer::JobFeatureName(i), "unknown") << "index " << i;
  }
  EXPECT_EQ(Featurizer::JobFeatureName(0), "mean log output_cardinality");
  EXPECT_EQ(Featurizer::JobFeatureName(10), "count Extract");
  EXPECT_EQ(Featurizer::JobFeatureName(10 + kPhysicalOperatorCount),
            "count partitioning Hash");
  EXPECT_EQ(Featurizer::JobFeatureName(Featurizer::kOperatorFeatureDim),
            "num_operators");
  EXPECT_EQ(Featurizer::JobFeatureName(Featurizer::kJobFeatureDim),
            "log1p tokens");
  EXPECT_EQ(Featurizer::JobFeatureName(Featurizer::kJobFeatureDim + 5),
            "unknown");
}

TEST(FeatureScalerTest, StandardizesColumns) {
  // Two columns: [1,3] mean 2 std 1; [10,10] constant.
  std::vector<double> data = {1.0, 10.0, 3.0, 10.0};
  Result<FeatureScaler> scaler = FeatureScaler::Fit(data, 2, 2);
  ASSERT_TRUE(scaler.ok());
  std::vector<double> row = {3.0, 10.0};
  scaler.value().Transform(row);
  EXPECT_NEAR(row[0], 1.0, 1e-12);
  EXPECT_NEAR(row[1], 0.0, 1e-12);  // Constant column: centered only.
}

TEST(FeatureScalerTest, TransformMatrixAppliesRowwise) {
  std::vector<double> data = {0.0, 2.0, 4.0, 6.0};
  Result<FeatureScaler> scaler = FeatureScaler::Fit(data, 2, 2);
  ASSERT_TRUE(scaler.ok());
  std::vector<double> matrix = data;
  scaler.value().TransformMatrix(matrix);
  EXPECT_NEAR(matrix[0], -1.0, 1e-12);
  EXPECT_NEAR(matrix[2], 1.0, 1e-12);
}

TEST(FeatureScalerTest, RejectsEmptyOrMismatchedInput) {
  EXPECT_FALSE(FeatureScaler::Fit({}, 0, 3).ok());
  EXPECT_FALSE(FeatureScaler::Fit({1.0, 2.0}, 2, 3).ok());
}

}  // namespace
}  // namespace tasq
