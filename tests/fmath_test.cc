// Property tests for the checked-math layer (common/fmath.h) over the
// domain edges that poison log-log pipelines: zeros of both signs,
// denormals, overflow boundaries, and NaN propagation. Death tests pin
// the abort behavior of TASQ_ASSERT_FINITE. Everything here must also run
// trap-clean under -DTASQ_FPE=ON: the Safe* tier's contract is that a
// rejected domain never raises a floating-point exception.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fmath.h"
#include "common/fpe.h"

namespace tasq {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMax = std::numeric_limits<double>::max();
constexpr double kDenorm = std::numeric_limits<double>::denorm_min();

TEST(SafeLogTest, PositiveFiniteInputsMatchStdLog) {
  for (double x : {kDenorm, 1e-300, 1e-9, 0.5, 1.0, 2.0, 1e9, kMax}) {
    Result<double> r = SafeLog(x);
    ASSERT_TRUE(r.ok()) << "x=" << x;
    EXPECT_DOUBLE_EQ(r.value(), std::log(x));
  }
}

TEST(SafeLogTest, RejectsZerosOfBothSigns) {
  EXPECT_FALSE(SafeLog(0.0).ok());
  EXPECT_FALSE(SafeLog(-0.0).ok());
}

TEST(SafeLogTest, RejectsNegativeNanAndInfinity) {
  EXPECT_FALSE(SafeLog(-1.0).ok());
  EXPECT_FALSE(SafeLog(-kDenorm).ok());
  EXPECT_FALSE(SafeLog(kNan).ok());
  EXPECT_FALSE(SafeLog(kInf).ok());
  EXPECT_FALSE(SafeLog(-kInf).ok());
  EXPECT_EQ(SafeLog(kNan).status().code(), StatusCode::kOutOfRange);
}

TEST(SafeExpTest, InRangeMatchesStdExpAndUnderflowIsZero) {
  for (double x : {-5.0, 0.0, 1.0, 700.0, kMaxExpArg}) {
    Result<double> r = SafeExp(x);
    ASSERT_TRUE(r.ok()) << "x=" << x;
    EXPECT_DOUBLE_EQ(r.value(), std::exp(x));
  }
  // Underflow toward +0 is well-defined, not an error.
  Result<double> tiny = SafeExp(-1000.0);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny.value(), 0.0);
}

TEST(SafeExpTest, RejectsOverflowNanAndInfinity) {
  EXPECT_FALSE(SafeExp(710.0).ok());
  EXPECT_FALSE(SafeExp(kInf).ok());
  EXPECT_FALSE(SafeExp(kNan).ok());
}

TEST(SafeDivTest, OrdinaryQuotientsMatchPlainDivision) {
  EXPECT_DOUBLE_EQ(SafeDiv(1.0, 4.0).value_or(-1), 0.25);
  EXPECT_DOUBLE_EQ(SafeDiv(-9.0, 3.0).value_or(-1), -3.0);
  EXPECT_DOUBLE_EQ(SafeDiv(0.0, 5.0).value_or(-1), 0.0);
  EXPECT_DOUBLE_EQ(SafeDiv(kDenorm, 2.0).value_or(-1), kDenorm / 2.0);
}

TEST(SafeDivTest, RejectsZeroDivisorsOfBothSigns) {
  EXPECT_FALSE(SafeDiv(1.0, 0.0).ok());
  EXPECT_FALSE(SafeDiv(1.0, -0.0).ok());
  EXPECT_FALSE(SafeDiv(0.0, 0.0).ok());
}

TEST(SafeDivTest, RejectsOverflowingQuotients) {
  EXPECT_FALSE(SafeDiv(1e308, 1e-100).ok());
  EXPECT_FALSE(SafeDiv(1.0, kDenorm).ok());
  EXPECT_FALSE(SafeDiv(kMax, 0.5).ok());
  // Near the boundary but finite: fine.
  EXPECT_TRUE(SafeDiv(1e300, 1e-7).ok());
}

TEST(SafeDivTest, RejectsNonFiniteOperands) {
  EXPECT_FALSE(SafeDiv(kNan, 1.0).ok());
  EXPECT_FALSE(SafeDiv(1.0, kNan).ok());
  EXPECT_FALSE(SafeDiv(kInf, 1.0).ok());
  EXPECT_FALSE(SafeDiv(1.0, kInf).ok());
}

TEST(SafePowTest, OrdinaryCasesMatchStdPow) {
  EXPECT_DOUBLE_EQ(SafePow(2.0, 10.0).value_or(-1), 1024.0);
  EXPECT_DOUBLE_EQ(SafePow(9.0, 0.5).value_or(-1), 3.0);
  EXPECT_DOUBLE_EQ(SafePow(10.0, -3.0).value_or(-1), 1e-3);
  // Negative base with an integer exponent is well-defined.
  EXPECT_DOUBLE_EQ(SafePow(-2.0, 3.0).value_or(-1), -8.0);
  EXPECT_DOUBLE_EQ(SafePow(-2.0, 2.0).value_or(-1), 4.0);
}

TEST(SafePowTest, ZeroBaseSplitsOnExponentSign) {
  EXPECT_DOUBLE_EQ(SafePow(0.0, 2.0).value_or(-1), 0.0);
  EXPECT_DOUBLE_EQ(SafePow(-0.0, 2.0).value_or(-1), 0.0);
  EXPECT_DOUBLE_EQ(SafePow(0.0, 0.0).value_or(-1), 1.0);  // IEEE pow(0,0).
  EXPECT_FALSE(SafePow(0.0, -1.0).ok());
  EXPECT_FALSE(SafePow(-0.0, -2.0).ok());
}

TEST(SafePowTest, RejectsNanDomains) {
  EXPECT_FALSE(SafePow(-8.0, 1.0 / 3.0).ok());
  EXPECT_FALSE(SafePow(-1.5, 0.5).ok());
  EXPECT_FALSE(SafePow(kNan, 2.0).ok());
  EXPECT_FALSE(SafePow(2.0, kNan).ok());
  EXPECT_FALSE(SafePow(kInf, 2.0).ok());
}

TEST(SafePowTest, RejectsOverflowButAllowsUnderflow) {
  EXPECT_FALSE(SafePow(1e300, 2.0).ok());
  EXPECT_FALSE(SafePow(10.0, 400.0).ok());
  EXPECT_FALSE(SafePow(-10.0, 401.0).ok());
  // The shrinking direction underflows toward zero: well-defined.
  Result<double> tiny = SafePow(10.0, -400.0);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny.value(), 0.0);
  // |base| == 1 never grows, whatever the exponent.
  EXPECT_DOUBLE_EQ(SafePow(1.0, 1e308).value_or(-1), 1.0);
}

TEST(FiniteOrTest, PassesFiniteAndReplacesTheRest) {
  EXPECT_DOUBLE_EQ(FiniteOr(2.5, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(FiniteOr(-0.0, 7.0), 0.0);
  EXPECT_DOUBLE_EQ(FiniteOr(kDenorm, 7.0), kDenorm);
  EXPECT_DOUBLE_EQ(FiniteOr(kNan, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(FiniteOr(kInf, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(FiniteOr(-kInf, 7.0), 7.0);
}

TEST(ClampedExpTest, IdenticalInRangeAndSaturatesAtMax) {
  EXPECT_DOUBLE_EQ(ClampedExp(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ClampedExp(10.0), std::exp(10.0));
  EXPECT_EQ(ClampedExp(-1000.0), 0.0);
  EXPECT_EQ(ClampedExp(710.0), kMax);
  EXPECT_EQ(ClampedExp(1e12), kMax);
  EXPECT_TRUE(std::isfinite(ClampedExp(kMaxExpArg)));
}

TEST(StableSigmoidTest, MatchesNaiveFormInSafeRangeAndSaturates) {
  for (double x : {-30.0, -2.0, -0.5, 0.0, 0.5, 2.0, 30.0}) {
    EXPECT_NEAR(StableSigmoid(x), 1.0 / (1.0 + std::exp(-x)), 1e-15)
        << "x=" << x;
  }
  // Far tails: saturate without ever overflowing exp.
  EXPECT_EQ(StableSigmoid(-5000.0), 0.0);
  EXPECT_EQ(StableSigmoid(5000.0), 1.0);
  // Symmetry: sigmoid(-x) == 1 - sigmoid(x).
  EXPECT_NEAR(StableSigmoid(-3.0), 1.0 - StableSigmoid(3.0), 1e-15);
}

TEST(StableSoftplusTest, PositiveMonotoneAndAsymptotic) {
  EXPECT_NEAR(StableSoftplus(0.0), std::log(2.0), 1e-15);
  // Large x: softplus(x) -> x; large negative: -> 0.
  EXPECT_DOUBLE_EQ(StableSoftplus(5000.0), 5000.0);
  EXPECT_EQ(StableSoftplus(-5000.0), 0.0);
  double prev = StableSoftplus(-10.0);
  for (double x = -9.5; x <= 10.0; x += 0.5) {
    double here = StableSoftplus(x);
    EXPECT_GT(here, prev);
    prev = here;
  }
}

TEST(AssertFiniteTest, PassesThroughFiniteValues) {
  EXPECT_DOUBLE_EQ(TASQ_ASSERT_FINITE(1.5 + 2.5), 4.0);
  EXPECT_DOUBLE_EQ(TASQ_ASSERT_FINITE(-0.0), 0.0);
  EXPECT_DOUBLE_EQ(TASQ_ASSERT_FINITE(kDenorm), kDenorm);
}

TEST(FmathDeathTest, AssertFiniteAbortsOnNan) {
  double nan = kNan;
  EXPECT_DEATH(TASQ_ASSERT_FINITE(nan), "TASQ_ASSERT_FINITE\\(nan\\)");
}

TEST(FmathDeathTest, AssertFiniteAbortsOnInfinityOfEitherSign) {
  double inf = kInf;
  EXPECT_DEATH(TASQ_ASSERT_FINITE(inf), "TASQ_ASSERT_FINITE");
  EXPECT_DEATH(TASQ_ASSERT_FINITE(-inf), "value=-inf");
}

// The runtime tier: with traps requested (TASQ_FPE builds), the guarded
// functions above must already have proven trap-free — this test asserts
// the harness itself reports its state coherently either way.
TEST(FpeHarnessTest, RequestedStateMatchesBuildConfiguration) {
#if defined(TASQ_FPE)
  EXPECT_TRUE(FpeTrapsRequested());
#else
  EXPECT_FALSE(FpeTrapsRequested());
#endif
}

}  // namespace
}  // namespace tasq
