#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "gbdt/gbdt.h"
#include "gbdt/xgb_pcc.h"

namespace tasq {
namespace {

// y = 3*x0 + noise on x in [0,1]^2 (x1 irrelevant).
void MakeLinearData(size_t n, uint64_t seed, std::vector<double>& features,
                    std::vector<double>& targets) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.Uniform(0.0, 1.0);
    double x1 = rng.Uniform(0.0, 1.0);
    features.insert(features.end(), {x0, x1});
    targets.push_back(3.0 * x0 + rng.Normal(0.0, 0.05));
  }
}

TEST(GbdtTest, FitsLinearFunctionSquaredError) {
  std::vector<double> features;
  std::vector<double> targets;
  MakeLinearData(2000, 1, features, targets);
  GbdtOptions options;
  options.objective = GbdtOptions::Objective::kSquaredError;
  options.num_trees = 80;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Train(features, 2000, 2, targets).ok());
  Rng rng(2);
  double mae = 0.0;
  int count = 200;
  for (int i = 0; i < count; ++i) {
    double x0 = rng.Uniform(0.05, 0.95);
    double x1 = rng.Uniform(0.0, 1.0);
    mae += std::fabs(model.Predict({x0, x1}) - 3.0 * x0);
  }
  EXPECT_LT(mae / count, 0.15);
}

TEST(GbdtTest, GammaObjectiveFitsPositiveSkewedTargets) {
  // y = exp(2 + 1.5*x0) * lognormal noise.
  Rng rng(3);
  std::vector<double> features;
  std::vector<double> targets;
  size_t n = 2000;
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.Uniform(0.0, 1.0);
    double x1 = rng.Uniform(0.0, 1.0);
    features.insert(features.end(), {x0, x1});
    targets.push_back(std::exp(2.0 + 1.5 * x0) * rng.LogNormal(0.0, 0.1));
  }
  GbdtOptions options;
  options.objective = GbdtOptions::Objective::kGamma;
  options.num_trees = 100;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Train(features, n, 2, targets).ok());
  // Percent error on fresh points.
  std::vector<double> predicted;
  std::vector<double> truth;
  for (int i = 0; i < 200; ++i) {
    double x0 = rng.Uniform(0.05, 0.95);
    predicted.push_back(model.Predict({x0, 0.5}));
    truth.push_back(std::exp(2.0 + 1.5 * x0));
  }
  EXPECT_LT(MedianAbsolutePercentError(predicted, truth), 10.0);
  // Predictions are positive by construction of the log link.
  for (double p : predicted) EXPECT_GT(p, 0.0);
}

TEST(GbdtTest, GammaRejectsNonPositiveTargets) {
  GbdtRegressor model(GbdtOptions{});
  std::vector<double> features = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> targets = {1.0, -1.0};
  EXPECT_FALSE(model.Train(features, 2, 2, targets).ok());
}

TEST(GbdtTest, RejectsMismatchedSizes) {
  GbdtRegressor model(GbdtOptions{});
  EXPECT_FALSE(model.Train({1.0, 2.0}, 2, 2, {1.0, 2.0}).ok());
  EXPECT_FALSE(model.Train({}, 0, 0, {}).ok());
}

TEST(GbdtTest, UntrainedPredictsZero) {
  GbdtRegressor model(GbdtOptions{});
  EXPECT_DOUBLE_EQ(model.Predict({1.0}), 0.0);
  EXPECT_FALSE(model.trained());
}

TEST(GbdtTest, MinSamplesLeafLimitsTreeGrowth) {
  std::vector<double> features;
  std::vector<double> targets;
  MakeLinearData(40, 5, features, targets);
  GbdtOptions options;
  options.objective = GbdtOptions::Objective::kSquaredError;
  options.min_samples_leaf = 40;  // No split can satisfy both children.
  options.num_trees = 5;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Train(features, 40, 2, targets).ok());
  // All trees are stumps (single leaf), so prediction is constant.
  double p1 = model.Predict({0.0, 0.0});
  double p2 = model.Predict({1.0, 1.0});
  EXPECT_DOUBLE_EQ(p1, p2);
}

TEST(GbdtTest, DeterministicGivenSeed) {
  std::vector<double> features;
  std::vector<double> targets;
  MakeLinearData(300, 6, features, targets);
  GbdtOptions options;
  options.objective = GbdtOptions::Objective::kSquaredError;
  options.seed = 77;
  GbdtRegressor a(options);
  GbdtRegressor b(options);
  ASSERT_TRUE(a.Train(features, 300, 2, targets).ok());
  ASSERT_TRUE(b.Train(features, 300, 2, targets).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.3, 0.7}), b.Predict({0.3, 0.7}));
}

// ---- XGBoost-style PCC wrappers -----------------------------------------

// Training data for a power-law runtime surface: runtime = b(x) * A^(a(x)).
struct PccPointData {
  std::vector<double> features;  // N x 2.
  std::vector<double> tokens;
  std::vector<double> runtimes;
  size_t n = 0;
};

PccPointData MakePccPoints(size_t jobs, uint64_t seed) {
  PccPointData data;
  Rng rng(seed);
  for (size_t j = 0; j < jobs; ++j) {
    double f0 = rng.Uniform(0.0, 1.0);
    double f1 = rng.Uniform(0.0, 1.0);
    double a = -(0.3 + 0.5 * f0);
    double b = std::exp(5.0 + 2.0 * f1);
    for (double frac : {0.6, 0.8, 1.0, 1.2}) {
      double tokens = 40.0 * frac;
      data.features.insert(data.features.end(), {f0, f1});
      data.tokens.push_back(tokens);
      data.runtimes.push_back(b * std::pow(tokens, a) *
                              rng.LogNormal(0.0, 0.03));
      ++data.n;
    }
  }
  return data;
}

TEST(XgbRuntimeModelTest, PointPredictionAccuracy) {
  PccPointData data = MakePccPoints(400, 10);
  XgbPccOptions options;
  options.gbdt.num_trees = 150;
  XgbRuntimeModel model(options);
  ASSERT_TRUE(model.Train(data.features, data.n, 2, data.tokens,
                          data.runtimes)
                  .ok());
  Rng rng(11);
  std::vector<double> predicted;
  std::vector<double> truth;
  for (int i = 0; i < 150; ++i) {
    double f0 = rng.Uniform(0.1, 0.9);
    double f1 = rng.Uniform(0.1, 0.9);
    double tokens = rng.Uniform(28.0, 44.0);
    Result<double> p = model.PredictRuntime({f0, f1}, tokens);
    ASSERT_TRUE(p.ok());
    predicted.push_back(p.value());
    truth.push_back(std::exp(5.0 + 2.0 * f1) *
                    std::pow(tokens, -(0.3 + 0.5 * f0)));
  }
  EXPECT_LT(MedianAbsolutePercentError(predicted, truth), 20.0);
}

TEST(XgbRuntimeModelTest, CurveSpansReferenceWindow) {
  PccPointData data = MakePccPoints(100, 12);
  XgbRuntimeModel model(XgbPccOptions{});
  ASSERT_TRUE(model.Train(data.features, data.n, 2, data.tokens,
                          data.runtimes)
                  .ok());
  Result<std::vector<PccSample>> curve = model.PredictCurve({0.5, 0.5}, 40.0);
  ASSERT_TRUE(curve.ok());
  ASSERT_GE(curve.value().size(), 3u);
  EXPECT_NEAR(curve.value().front().tokens, 24.0, 1e-9);   // -40%.
  EXPECT_NEAR(curve.value().back().tokens, 56.0, 1e-9);    // +40%.
}

TEST(XgbRuntimeModelTest, PowerLawPccRecoversTrend) {
  PccPointData data = MakePccPoints(400, 13);
  XgbPccOptions options;
  options.gbdt.num_trees = 150;
  XgbRuntimeModel model(options);
  ASSERT_TRUE(model.Train(data.features, data.n, 2, data.tokens,
                          data.runtimes)
                  .ok());
  Result<PowerLawPcc> pcc = model.PredictPowerLawPcc({0.5, 0.5}, 40.0);
  ASSERT_TRUE(pcc.ok());
  // True exponent at f0=0.5 is -0.55; the refit should land in range.
  EXPECT_LT(pcc.value().a, -0.1);
  EXPECT_GT(pcc.value().a, -1.2);
}

TEST(XgbRuntimeModelTest, SmoothedCurveIsFiniteAndOrdered) {
  PccPointData data = MakePccPoints(100, 14);
  XgbRuntimeModel model(XgbPccOptions{});
  ASSERT_TRUE(model.Train(data.features, data.n, 2, data.tokens,
                          data.runtimes)
                  .ok());
  Result<std::vector<PccSample>> curve =
      model.PredictSmoothedCurve({0.4, 0.6}, 40.0);
  ASSERT_TRUE(curve.ok());
  for (size_t i = 1; i < curve.value().size(); ++i) {
    EXPECT_GT(curve.value()[i].tokens, curve.value()[i - 1].tokens);
    EXPECT_TRUE(std::isfinite(curve.value()[i].runtime_seconds));
  }
}

TEST(XgbRuntimeModelTest, ValidatesInput) {
  XgbRuntimeModel model(XgbPccOptions{});
  EXPECT_FALSE(model.PredictRuntime({1.0}, 10.0).ok());  // Untrained.
  PccPointData data = MakePccPoints(10, 15);
  ASSERT_TRUE(model.Train(data.features, data.n, 2, data.tokens,
                          data.runtimes)
                  .ok());
  EXPECT_FALSE(model.PredictRuntime({1.0}, 10.0).ok());   // Wrong dim.
  EXPECT_FALSE(model.PredictRuntime({1.0, 2.0}, 0.0).ok());  // Bad tokens.
  EXPECT_FALSE(model.PredictCurve({1.0, 2.0}, -5.0).ok());
}

// ---------------------------------------------------------------------------
// Histogram-kernel conformance: the gather-free per-feature passes
// (gbdt_internal, driven by GrowNode) must accumulate exactly what the
// historical row-major scatter accumulated, in the same per-bin order.
// ---------------------------------------------------------------------------

TEST(GbdtHistogramTest, PackAndBuildMatchNaiveReference) {
  Rng rng(42);
  const size_t rows = 257;  // Not a multiple of any vector width.
  const size_t nbins = 16;
  std::vector<double> grad(rows);
  std::vector<double> hess(rows);
  std::vector<int32_t> col(rows);
  for (size_t r = 0; r < rows; ++r) {
    grad[r] = rng.Uniform(-3.0, 3.0);
    hess[r] = rng.Uniform(0.0, 1.0);
    col[r] = static_cast<int32_t>(rng.Uniform(0.0, 1.0) * nbins);
    if (col[r] == static_cast<int32_t>(nbins)) col[r] = nbins - 1;
  }
  // An unsorted, gappy sample subset, as subsampled tree nodes produce.
  std::vector<int> samples;
  for (size_t r = 0; r < rows; ++r) {
    if (rng.Uniform(0.0, 1.0) < 0.7) samples.push_back(static_cast<int>(r));
  }

  gbdt_internal::HistScratch scratch;
  gbdt_internal::PackNode(samples, grad, hess, scratch);
  ASSERT_EQ(scratch.node_grad.size(), samples.size());
  ASSERT_EQ(scratch.node_hess.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(scratch.node_grad[i], grad[static_cast<size_t>(samples[i])]);
    EXPECT_EQ(scratch.node_hess[i], hess[static_cast<size_t>(samples[i])]);
  }

  gbdt_internal::BuildFeatureHistogram(col.data(), samples, nbins, scratch);
  // The naive reference is the historical build: iterate samples in
  // order, scatter into per-bin accumulators. Same iteration order means
  // the restructured build must match to the bit, not to a tolerance.
  std::vector<double> want_grad(nbins, 0.0);
  std::vector<double> want_hess(nbins, 0.0);
  std::vector<int> want_count(nbins, 0);
  for (int r : samples) {
    int32_t b = col[static_cast<size_t>(r)];
    want_grad[static_cast<size_t>(b)] += grad[static_cast<size_t>(r)];
    want_hess[static_cast<size_t>(b)] += hess[static_cast<size_t>(r)];
    ++want_count[static_cast<size_t>(b)];
  }
  ASSERT_EQ(scratch.grad_sum.size(), nbins);
  for (size_t b = 0; b < nbins; ++b) {
    EXPECT_EQ(scratch.grad_sum[b], want_grad[b]) << "bin " << b;
    EXPECT_EQ(scratch.hess_sum[b], want_hess[b]) << "bin " << b;
    EXPECT_EQ(scratch.count[b], want_count[b]) << "bin " << b;
  }
}

TEST(GbdtHistogramTest, EmptyNodeAndEmptyBinsAreWellFormed) {
  gbdt_internal::HistScratch scratch;
  std::vector<int> samples;  // Leaf with zero samples.
  std::vector<double> grad;
  std::vector<double> hess;
  gbdt_internal::PackNode(samples, grad, hess, scratch);
  EXPECT_TRUE(scratch.node_grad.empty());
  std::vector<int32_t> col;
  gbdt_internal::BuildFeatureHistogram(col.data(), samples, 4, scratch);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(scratch.grad_sum[b], 0.0);
    EXPECT_EQ(scratch.hess_sum[b], 0.0);
    EXPECT_EQ(scratch.count[b], 0);
  }
}

}  // namespace
}  // namespace tasq
