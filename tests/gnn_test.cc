#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gnn/gnn_model.h"

namespace tasq {
namespace {

// Builds a random chain graph whose PCC parameters depend on simple graph
// statistics (mean of feature 0 and node count), learnable by the GNN.
struct SyntheticGraphSet {
  std::vector<GraphExample> graphs;
  PccSupervision supervision;
  size_t feature_dim = 4;
};

GraphExample ChainGraph(size_t n, size_t dim, Rng& rng, double* mean_f0) {
  GraphExample graph;
  graph.num_nodes = n;
  graph.node_features.resize(n * dim);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      graph.node_features[i * dim + d] = rng.Uniform(-1.0, 1.0);
    }
    sum += graph.node_features[i * dim];
  }
  *mean_f0 = sum / static_cast<double>(n);
  // Normalized adjacency of an undirected chain with self loops.
  std::vector<double> adjacency(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) adjacency[i * n + i] = 1.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    adjacency[i * n + i + 1] = 1.0;
    adjacency[(i + 1) * n + i] = 1.0;
  }
  std::vector<double> inv_sqrt(n);
  for (size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (size_t j = 0; j < n; ++j) degree += adjacency[i * n + j];
    inv_sqrt[i] = 1.0 / std::sqrt(degree);
  }
  graph.norm_adjacency.resize(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      graph.norm_adjacency[i * n + j] =
          adjacency[i * n + j] * inv_sqrt[i] * inv_sqrt[j];
    }
  }
  return graph;
}

SyntheticGraphSet MakeGraphSet(size_t count, uint64_t seed) {
  SyntheticGraphSet set;
  Rng rng(seed);
  for (size_t g = 0; g < count; ++g) {
    size_t n = static_cast<size_t>(rng.UniformInt(4, 16));
    double mean_f0 = 0.0;
    set.graphs.push_back(ChainGraph(n, set.feature_dim, rng, &mean_f0));
    PowerLawPcc target;
    target.a = -(0.5 + 0.3 * mean_f0);
    target.b = std::exp(5.0 + 0.1 * static_cast<double>(n));
    set.supervision.targets.push_back(target);
    double tokens = std::exp(rng.Uniform(2.0, 4.0));
    set.supervision.observed_tokens.push_back(tokens);
    set.supervision.observed_runtime.push_back(target.EvalRunTime(tokens));
  }
  return set;
}

TEST(GnnPccModelTest, LearnsGraphLevelRelationship) {
  SyntheticGraphSet train = MakeGraphSet(300, 1);
  GnnOptions options;
  options.epochs = 60;
  options.gcn_hidden = {16, 8};
  options.head_hidden = {8};
  options.seed = 5;
  GnnPccModel model(train.feature_dim, options);
  Result<double> loss = model.Train(train.graphs, train.supervision);
  ASSERT_TRUE(loss.ok());

  SyntheticGraphSet test = MakeGraphSet(60, 2);
  double mean_a_err = 0.0;
  for (size_t i = 0; i < test.graphs.size(); ++i) {
    Result<PowerLawPcc> pcc = model.Predict(test.graphs[i]);
    ASSERT_TRUE(pcc.ok());
    EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
    mean_a_err += std::fabs(pcc.value().a - test.supervision.targets[i].a);
  }
  mean_a_err /= static_cast<double>(test.graphs.size());
  // Exponents span ~0.35 around -0.5; a trained model beats the
  // predict-the-mean baseline (~0.07) decisively... but conservatively we
  // require clear learning signal.
  EXPECT_LT(mean_a_err, 0.12);
}

TEST(GnnPccModelTest, HandlesVariableGraphSizes) {
  SyntheticGraphSet train = MakeGraphSet(40, 3);
  GnnOptions options;
  options.epochs = 2;
  options.gcn_hidden = {8};
  options.head_hidden = {8};
  GnnPccModel model(train.feature_dim, options);
  ASSERT_TRUE(model.Train(train.graphs, train.supervision).ok());
  Rng rng(4);
  for (size_t n : {1u, 2u, 5u, 40u}) {
    double unused = 0.0;
    GraphExample graph = ChainGraph(n, train.feature_dim, rng, &unused);
    Result<PowerLawPcc> pcc = model.Predict(graph);
    ASSERT_TRUE(pcc.ok()) << "n=" << n;
    EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
  }
}

TEST(GnnPccModelTest, SageAggregatorTrainsAndPredicts) {
  SyntheticGraphSet train = MakeGraphSet(80, 7);
  GnnOptions options;
  options.epochs = 10;
  options.aggregator = GnnAggregator::kSage;
  options.gcn_hidden = {8};
  options.head_hidden = {8};
  GnnPccModel model(train.feature_dim, options);
  ASSERT_TRUE(model.Train(train.graphs, train.supervision).ok());
  // SAGE layers double the input width: 2*4*8+8 for the first layer.
  Result<PowerLawPcc> pcc = model.Predict(train.graphs[0]);
  ASSERT_TRUE(pcc.ok());
  EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
}

TEST(GnnPccModelTest, SageParameterCountDoublesLayerInput) {
  GnnOptions gcn_options;
  gcn_options.gcn_hidden = {8};
  gcn_options.head_hidden = {8};
  GnnOptions sage_options = gcn_options;
  sage_options.aggregator = GnnAggregator::kSage;
  GnnPccModel gcn(4, gcn_options);
  GnnPccModel sage(4, sage_options);
  // Only the graph layer differs: (2*4*8) vs (4*8) weights.
  EXPECT_EQ(sage.NumParameters() - gcn.NumParameters(), 4 * 8);
}

TEST(GnnPccModelTest, MeanPoolingAblationTrains) {
  SyntheticGraphSet train = MakeGraphSet(60, 5);
  GnnOptions options;
  options.epochs = 3;
  options.attention_pooling = false;
  options.gcn_hidden = {8};
  GnnPccModel model(train.feature_dim, options);
  EXPECT_TRUE(model.Train(train.graphs, train.supervision).ok());
}

TEST(GnnPccModelTest, EarlyStoppingTrainsAndStaysMonotone) {
  SyntheticGraphSet train = MakeGraphSet(120, 11);
  GnnOptions options;
  options.epochs = 100;
  options.validation_fraction = 0.2;
  options.early_stopping_patience = 5;
  options.gcn_hidden = {8};
  options.head_hidden = {8};
  GnnPccModel model(train.feature_dim, options);
  Result<double> best_val = model.Train(train.graphs, train.supervision);
  ASSERT_TRUE(best_val.ok());
  EXPECT_GT(best_val.value(), 0.0);
  for (size_t g = 0; g < 10; ++g) {
    Result<PowerLawPcc> pcc = model.Predict(train.graphs[g]);
    ASSERT_TRUE(pcc.ok());
    EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
  }
}

TEST(GnnPccModelTest, ParameterCountReflectsArchitecture) {
  GnnOptions options;
  options.gcn_hidden = {64, 32};
  options.head_hidden = {32};
  GnnPccModel model(49, options);
  int64_t expected = (49 * 64 + 64) + (64 * 32 + 32) +  // GCN layers.
                     (32 * 32 + 32) +                   // Attention context.
                     (32 * 32 + 32) +                   // Head hidden.
                     2 * (32 + 1);                      // Two output heads.
  EXPECT_EQ(model.NumParameters(), expected);
}

TEST(GnnPccModelTest, GnnHasMoreParametersThanTypicalNn) {
  // Table 7's qualitative relationship.
  GnnPccModel gnn(49, GnnOptions{});
  EXPECT_GT(gnn.NumParameters(), 5000);
}

TEST(GnnPccModelTest, ValidatesInput) {
  GnnPccModel model(4, GnnOptions{});
  GraphExample empty;
  EXPECT_FALSE(model.Predict(empty).ok());  // Untrained and empty.
  SyntheticGraphSet train = MakeGraphSet(10, 6);
  // Mismatched graph count.
  PccSupervision bad = train.supervision;
  bad.targets.pop_back();
  bad.observed_tokens.pop_back();
  bad.observed_runtime.pop_back();
  EXPECT_FALSE(model.Train(train.graphs, bad).ok());
  // Bad graph shape.
  std::vector<GraphExample> graphs = train.graphs;
  graphs[0].node_features.pop_back();
  EXPECT_FALSE(model.Train(graphs, train.supervision).ok());
}

}  // namespace
}  // namespace tasq
