// Golden-file regression test: pins the full rendered what-if report for a
// fixed workload + training configuration against checked-in expectations
// under tests/golden/. Any change to featurization, training, inference,
// report math, or formatting shows up as a readable text diff.
//
// To refresh the expectations after an intentional change:
//
//   ./tests/golden_test --update_golden
//
// then review and commit the rewritten files under tests/golden/.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "arbiter/allocation_arbiter.h"
#include "common/fpe.h"
#include "common/rng.h"
#include "simcluster/cluster_scheduler.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

// Set from main() before the tests run.
static bool g_update_golden = false;

namespace tasq {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(TASQ_GOLDEN_DIR) + "/" + name;
}

const char* ModelSlug(ModelKind kind) {
  switch (kind) {
    case ModelKind::kXgboostSs: return "xgb_ss";
    case ModelKind::kXgboostPl: return "xgb_pl";
    case ModelKind::kNn: return "nn";
    case ModelKind::kGnn: return "gnn";
  }
  return "unknown";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Compares `actual` against the named golden file, or rewrites the file
// when the binary ran with --update_golden.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (g_update_golden) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << path << " is missing; run golden_test --update_golden";
  EXPECT_EQ(actual, expected)
      << "report drifted from " << path
      << " (rerun with --update_golden if the change is intentional)";
}

class GoldenReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 17;
    generator_ = new WorkloadGenerator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto observed =
        ObserveWorkload(generator_->Generate(0, 120), noise, 1).value();
    TasqOptions options;
    options.nn.epochs = 20;
    options.gnn.epochs = 2;
    options.gnn.gcn_hidden = {8};
    options.gnn.head_hidden = {8};
    options.xgb.gbdt.num_trees = 30;
    pipeline_ = new Tasq(options);
    ASSERT_TRUE(pipeline_->Train(observed).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete generator_;
    pipeline_ = nullptr;
    generator_ = nullptr;
  }

  static Tasq* pipeline_;
  static WorkloadGenerator* generator_;
};

Tasq* GoldenReportTest::pipeline_ = nullptr;
WorkloadGenerator* GoldenReportTest::generator_ = nullptr;

TEST_F(GoldenReportTest, WhatIfReportsMatchGoldenFiles) {
  for (int64_t job_id : {900, 901}) {
    Job job = generator_->GenerateJob(job_id);
    for (ModelKind model : {ModelKind::kXgboostSs, ModelKind::kXgboostPl,
                            ModelKind::kNn, ModelKind::kGnn}) {
      auto report = BuildWhatIfReport(*pipeline_, job.graph, model,
                                      job.default_tokens, 9);
      ASSERT_TRUE(report.ok())
          << ModelKindName(model) << " job " << job_id;
      std::string name = std::string("what_if_") + ModelSlug(model) +
                         "_job" + std::to_string(job_id) + ".txt";
      CheckGolden(name, report.value().ToText());
    }
  }
}

// Pins the scheduled trace of a fixed 64-job multi-tenant workload under
// all four arbiter policies, so any change to arbitration, grant sizing,
// or the scheduler's event loop shows up as a readable line diff.
TEST(GoldenArbiterTest, PolicyTracesMatchGoldenFile) {
  WorkloadConfig config;
  config.seed = 23;
  WorkloadGenerator generator(config);
  auto jobs = generator.Generate(500, 64);
  constexpr double kPool = 400.0;
  Rng rng(2311);
  std::vector<Submission> submissions;
  double burst_start = 0.0;
  size_t i = 0;
  while (i < jobs.size()) {
    burst_start += rng.LogNormal(std::log(90.0), 0.7);
    int64_t burst = rng.UniformInt(2, 6);
    for (int64_t k = 0; k < burst && i < jobs.size(); ++k, ++i) {
      Submission submission;
      submission.job_id = jobs[i].id;
      submission.tenant_id = static_cast<int64_t>(i % 4);
      submission.arrival_seconds = burst_start + rng.Uniform(0.0, 4.0);
      submission.requested_tokens =
          std::min(kPool, std::max(1.0, jobs[i].default_tokens));
      submission.plan = jobs[i].plan;
      submissions.push_back(std::move(submission));
    }
  }
  ClusterScheduler scheduler(SchedulerConfig{kPool, false, {}, 42});
  std::string rendered;
  for (int p = 0; p < kArbiterPolicyCount; ++p) {
    ArbiterOptions options;
    options.policy = static_cast<ArbiterPolicy>(p);
    auto arbiter = MakeArbiter(options, BeliefsFromPlans(submissions));
    auto trace = scheduler.Run(submissions, arbiter.get());
    ASSERT_TRUE(trace.ok()) << ArbiterPolicyName(options.policy);
    rendered += std::string("== policy ") +
                ArbiterPolicyName(options.policy) + " ==\n";
    rendered += FormatTrace(trace.value());
  }
  CheckGolden("arbiter_policies.txt", rendered);
}

}  // namespace
}  // namespace tasq

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  tasq::InstallFpeTrapsIfRequested();
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update_golden") g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
