// Runtime tier of the hot-path conformance story: the static analyzer
// (scripts/tasq_hot.py) proves the TASQ_HOT serving path contains no
// allocation calls; these tests measure it. A counting operator new
// (tests/alloc_counter.h) pins the warm cache-hit request path —
// PccServer::TryScoreCached → JobGraph::Fingerprint → ReportCache::GetInto
// — at exactly ZERO heap allocations per request, and checks the
// lock-free latency histogram and fast-path stats that ride along.

#include <gtest/gtest.h>

#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "serve/cache.h"
#include "serve/latency_histogram.h"
#include "serve/server.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

namespace tasq {
namespace {

// ---- alloc_counter self-test ---------------------------------------------

// The counter must count a known allocation pattern exactly — otherwise a
// zero-allocation assertion could pass vacuously because the overrides
// never linked in. Direct calls to the allocation functions are ordinary
// function calls, which (unlike new-expressions) the compiler may not
// elide, so the expected counts are exact by construction.
TEST(AllocCounterTest, CountsDirectAllocationCallsExactly) {
  uint64_t before = tasq_test::AllocationCount();
  void* a = ::operator new(16);
  ::operator delete(a);
  void* b = ::operator new[](32);
  ::operator delete[](b);
  EXPECT_EQ(tasq_test::AllocationCount() - before, 2u);
}

TEST(AllocCounterTest, CountsAlignedAndNothrowVariants) {
  uint64_t before = tasq_test::AllocationCount();
  void* a = ::operator new(64, std::align_val_t(64));
  ::operator delete(a, std::align_val_t(64));
  void* b = ::operator new(8, std::nothrow);
  ::operator delete(b, std::nothrow);
  EXPECT_EQ(tasq_test::AllocationCount() - before, 2u);
}

TEST(AllocCounterTest, DeallocationIsNotCounted) {
  void* a = ::operator new(16);
  uint64_t before = tasq_test::AllocationCount();
  ::operator delete(a);
  EXPECT_EQ(tasq_test::AllocationCount() - before, 0u);
}

// ---- LatencyHistogram ----------------------------------------------------

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram hist;
  LatencyHistogram::Snapshot s = hist.TakeSnapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_ms(), 0.0);
  EXPECT_EQ(s.p50_ms(), 0.0);
  EXPECT_EQ(s.p99_ms(), 0.0);
  EXPECT_EQ(s.max_ms, 0.0);
}

TEST(LatencyHistogramTest, QuantilesOfKnownDistribution) {
  LatencyHistogram hist;
  // 99 observations of ~1us and one 1ms outlier: the median must stay in
  // the microsecond bucket while the tail sees the outlier.
  for (int i = 0; i < 99; ++i) hist.Observe(1000);
  hist.Observe(1000000);
  LatencyHistogram::Snapshot s = hist.TakeSnapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.max_ms, 1.0);
  // 1000ns has bit width 10; its bucket's upper edge is 2^10 ns.
  EXPECT_NEAR(s.p50_ms(), 0.001024, 1e-12);
  // rank ceil(0.99 * 100) = 99 still lands in the microsecond bucket.
  EXPECT_NEAR(s.p99_ms(), 0.001024, 1e-12);
  // The top of the distribution is the outlier, clamped to the true max.
  EXPECT_DOUBLE_EQ(s.QuantileMs(1.0), 1.0);
  EXPECT_LE(s.p50_ms(), s.p99_ms());
  EXPECT_GT(s.mean_ms(), 0.0);
}

TEST(LatencyHistogramTest, QuantileIsMonotoneAndBoundedByMax) {
  LatencyHistogram hist;
  for (uint64_t ns = 1; ns < 2000000; ns *= 3) hist.Observe(ns);
  LatencyHistogram::Snapshot s = hist.TakeSnapshot();
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double value = s.QuantileMs(q);
    EXPECT_GE(value, previous);
    EXPECT_LE(value, s.max_ms);
    previous = value;
  }
}

TEST(LatencyHistogramTest, ObserveAllocatesNothing) {
  LatencyHistogram hist;
  uint64_t before = tasq_test::AllocationCount();
  for (uint64_t i = 0; i < 10000; ++i) hist.Observe(i * 37);
  EXPECT_EQ(tasq_test::AllocationCount() - before, 0u);
}

// ---- The zero-allocation serving fast path -------------------------------

class HotPathTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 47;
    generator_ = new WorkloadGenerator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto observed =
        ObserveWorkload(generator_->Generate(0, 60), noise, 1).value();
    TasqOptions options;
    options.train_xgb = false;  // Only the NN serves in this suite; keep
    options.train_gnn = false;  // suite setup fast.
    options.nn.epochs = 8;
    pipeline_ = new Tasq(options);
    ASSERT_TRUE(pipeline_->Train(observed).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete generator_;
    pipeline_ = nullptr;
    generator_ = nullptr;
  }

  static std::vector<ScoreRequest> MakeRequests(int64_t first_id, int count) {
    std::vector<ScoreRequest> requests;
    for (const Job& job : generator_->Generate(first_id, count)) {
      ScoreRequest request;
      request.graph = job.graph;
      request.model = ModelKind::kNn;
      request.reference_tokens = job.default_tokens;
      requests.push_back(std::move(request));
    }
    return requests;
  }

  static Tasq* pipeline_;
  static WorkloadGenerator* generator_;
};

Tasq* HotPathTest::pipeline_ = nullptr;
WorkloadGenerator* HotPathTest::generator_ = nullptr;

TEST_F(HotPathTest, TryScoreCachedMissesBeforePrimingAndHitsAfter) {
  std::vector<ScoreRequest> requests = MakeRequests(100, 2);
  PccServer server(*pipeline_, PccServerOptions{});
  WhatIfReport buffer;
  EXPECT_FALSE(server.TryScoreCached(requests[0], &buffer));
  // A miss counts nothing on the server side (the caller re-submits).
  EXPECT_EQ(server.Stats().received, 0u);
  Result<WhatIfReport> cold = server.Score(requests[0]);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(server.TryScoreCached(requests[0], &buffer));
  EXPECT_FALSE(server.TryScoreCached(requests[1], &buffer));
}

// The acceptance criterion of the hot-path work: once the cache and the
// caller's report buffer are warm, a cache-hit request performs ZERO heap
// allocations — no new, no vector growth, no string, no promise.
TEST_F(HotPathTest, WarmCacheHitPathAllocatesExactlyZero) {
  std::vector<ScoreRequest> requests = MakeRequests(200, 4);
  PccServer server(*pipeline_, PccServerOptions{});
  for (const ScoreRequest& request : requests) {
    ASSERT_TRUE(server.Score(request).ok());  // Prime the cache (cold).
  }
  WhatIfReport buffer;
  // Warm the caller's buffer: the first hit grows buffer.curve to the
  // report's size; every later copy-assign reuses that capacity.
  ASSERT_TRUE(server.TryScoreCached(requests[0], &buffer));

  constexpr int kRounds = 256;
  uint64_t before = tasq_test::AllocationCount();
  // No gtest assertions inside the measured loop: EXPECT_* may allocate.
  bool all_hit = true;
  for (int i = 0; i < kRounds; ++i) {
    all_hit &= server.TryScoreCached(
        requests[static_cast<size_t>(i) % requests.size()], &buffer);
  }
  uint64_t allocations = tasq_test::AllocationCount() - before;
  EXPECT_TRUE(all_hit);
  EXPECT_EQ(allocations, 0u)
      << "warm cache-hit serving path must not allocate (budget: 0 per "
         "request, measured over "
      << kRounds << " requests)";
}

// The cold-path acceptance criterion of the arena work (PR 9, mirroring
// WarmCacheHitPathAllocatesExactlyZero above): a cold submitted request —
// promise/future, queue entry, featurization, NN inference, report
// assembly — stays within a single-digit allocation budget. Featurization
// runs through Featurizer::JobLevelInto (stack row), inference through
// Tasq::PredictPccBatchInto (reused matrices), and batch assembly through
// the drainer's ScratchArena, so what remains per request is the future's
// shared state, the report's curve vectors, and amortized queue blocks.
TEST_F(HotPathTest, ColdSubmitPathStaysWithinAllocationBudget) {
  constexpr int kRequests = 192;
  constexpr uint64_t kBudgetPerRequest = 8;
  std::vector<ScoreRequest> requests = MakeRequests(500, kRequests);
  PccServerOptions options;
  options.num_threads = 1;
  options.queue_capacity = 64;
  options.max_batch = 16;
  options.cache_capacity = 0;  // Every request takes the cold path.
  PccServer server(*pipeline_, options);

  uint64_t before = tasq_test::AllocationCount();
  // Moved in so the caller-side request copies are not charged to the
  // serving path. No gtest assertions before the measurement completes:
  // EXPECT_* may allocate.
  std::vector<Result<WhatIfReport>> results =
      server.ScoreBatch(std::move(requests));
  uint64_t allocations = tasq_test::AllocationCount() - before;

  ASSERT_EQ(results.size(), static_cast<size_t>(kRequests));
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  EXPECT_LE(allocations, kBudgetPerRequest * kRequests)
      << "cold submit path exceeded its allocation budget: "
      << (static_cast<double>(allocations) / kRequests)
      << " allocations/request measured over " << kRequests
      << " requests (budget: " << kBudgetPerRequest << " per request)";
}

// The fast path must serve the same bytes as cold scoring — buffer reuse
// may not leak state between differently-keyed requests.
TEST_F(HotPathTest, FastPathReplaysColdReportsByteForByte) {
  std::vector<ScoreRequest> requests = MakeRequests(300, 3);
  PccServer server(*pipeline_, PccServerOptions{});
  std::vector<std::string> cold_texts;
  for (const ScoreRequest& request : requests) {
    Result<WhatIfReport> cold = server.Score(request);
    ASSERT_TRUE(cold.ok());
    cold_texts.push_back(cold.value().ToText());
  }
  WhatIfReport buffer;
  // Interleave the keys so every hit overwrites a buffer previously
  // holding a different report.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(server.TryScoreCached(requests[i], &buffer));
      EXPECT_EQ(buffer.ToText(), cold_texts[i]);
    }
  }
}

TEST_F(HotPathTest, FastPathHitsCountIntoServerStats) {
  std::vector<ScoreRequest> requests = MakeRequests(400, 2);
  PccServer server(*pipeline_, PccServerOptions{});
  for (const ScoreRequest& request : requests) {
    ASSERT_TRUE(server.Score(request).ok());
  }
  ServerStats primed = server.Stats();
  WhatIfReport buffer;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(server.TryScoreCached(requests[0], &buffer));
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.received, primed.received + 10);
  EXPECT_EQ(stats.completed, primed.completed + 10);
  EXPECT_EQ(stats.cache_hits, primed.cache_hits + 10);
  EXPECT_EQ(stats.failed, primed.failed);
  EXPECT_EQ(stats.end_to_end.count, primed.end_to_end.count + 10);
  EXPECT_LE(stats.end_to_end.p50_ms(), stats.end_to_end.p99_ms());
  EXPECT_LE(stats.end_to_end.p99_ms(), stats.end_to_end.max_ms);
}

}  // namespace
}  // namespace tasq
