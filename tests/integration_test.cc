// End-to-end integration tests spanning the whole system: the Figure-4
// deployment loop through files, the §5.1-§5.2 validation chain, and the
// drift/retrain loop.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "arepas/arepas.h"
#include "common/stats.h"
#include "selection/flighting.h"
#include "selection/job_selection.h"
#include "tasq/evaluation.h"
#include "tasq/repository.h"
#include "tasq/tasq.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

namespace tasq {
namespace {

TasqOptions FastOptions() {
  TasqOptions options;
  options.nn.epochs = 25;
  options.gnn.epochs = 2;
  options.gnn.gcn_hidden = {8};
  options.gnn.head_hidden = {8};
  options.xgb.gbdt.num_trees = 20;
  return options;
}

TEST(IntegrationTest, Figure4LoopThroughFiles) {
  // ingest -> repository file -> train -> model file -> scoring service.
  std::string repo_path = ::testing::TempDir() + "/itest_workload.txt";
  std::string model_path = ::testing::TempDir() + "/itest_model.txt";
  WorkloadConfig config;
  config.seed = 123;
  WorkloadGenerator generator(config);
  NoiseModel noise;
  noise.enabled = true;
  auto observed =
      ObserveWorkload(generator.Generate(0, 90), noise, 1).value();
  ASSERT_TRUE(SaveWorkloadToFile(repo_path, observed).ok());

  {
    auto workload = LoadWorkloadFromFile(repo_path);
    ASSERT_TRUE(workload.ok());
    Tasq trainer(FastOptions());
    ASSERT_TRUE(trainer.Train(workload.value()).ok());
    ASSERT_TRUE(trainer.SaveToFile(model_path).ok());
  }

  auto service = Tasq::LoadFromFile(model_path);
  ASSERT_TRUE(service.ok());
  Job incoming = generator.GenerateJob(5555);
  auto report = BuildWhatIfReport(service.value(), incoming.graph,
                                  ModelKind::kNn, incoming.default_tokens);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().has_pcc);
  EXPECT_GE(report.value().aggressive.tokens, 1.0);
  std::remove(repo_path.c_str());
  std::remove(model_path.c_str());
}

TEST(IntegrationTest, SelectionFlightingValidationChain) {
  // §5.1-§5.2 as one flow: select a representative subset under pool
  // constraints, flight it, filter anomalies, and validate AREPAS against
  // the flighted ground truth.
  WorkloadConfig config;
  config.seed = 321;
  WorkloadGenerator generator(config);
  auto jobs = generator.Generate(0, 250);

  std::vector<double> features;
  std::vector<double> summary;
  std::vector<int> template_ids;
  std::vector<size_t> pool;
  for (size_t i = 0; i < jobs.size(); ++i) {
    features.push_back(std::log1p(jobs[i].default_tokens));
    features.push_back(static_cast<double>(jobs[i].plan.stages.size()));
    summary.push_back(jobs[i].default_tokens);
    template_ids.push_back(jobs[i].template_id);
    // Pool constraint: a token range (the paper's operational filters).
    if (jobs[i].default_tokens >= 8.0 && jobs[i].default_tokens <= 300.0) {
      pool.push_back(i);
    }
  }
  SelectionConfig selection_config;
  selection_config.num_clusters = 4;
  selection_config.sample_size = 40;
  auto outcome = SelectRepresentativeJobs(features, jobs.size(), 2, summary,
                                          template_ids, pool,
                                          selection_config);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GE(outcome.value().selected.size(), 20u);

  std::vector<Job> selected;
  for (size_t idx : outcome.value().selected) selected.push_back(jobs[idx]);
  FlightHarness harness(FlightConfig{});
  auto flighted = FilterNonAnomalous(harness.FlightJobs(selected));
  ASSERT_GE(flighted.size(), 10u);

  // AREPAS vs flighted truth: median error must stay in the paper's band.
  Arepas arepas;
  std::vector<double> errors;
  for (const FlightedJob& job : flighted) {
    const FlightRecord& reference = job.flights.front();
    for (size_t f = 1; f < job.flights.size(); ++f) {
      auto predicted = arepas.SimulateRunTimeSeconds(reference.skyline,
                                                     job.flights[f].tokens);
      ASSERT_TRUE(predicted.ok());
      errors.push_back(std::fabs(predicted.value() -
                                 job.flights[f].runtime_seconds) /
                       job.flights[f].runtime_seconds * 100.0);
    }
  }
  EXPECT_LT(Median(errors), 25.0);
}

TEST(IntegrationTest, RetrainRecoversFromCalibrationDrift) {
  // Drifted cluster: a stale model mispredicts systematically; retraining
  // on drifted telemetry fixes it.
  WorkloadConfig day0;
  day0.seed = 777;
  WorkloadConfig day1 = day0;
  day1.seconds_per_cost_unit = 2.5;

  NoiseModel noise;
  noise.enabled = true;
  auto train0 = ObserveWorkload(WorkloadGenerator(day0).Generate(0, 300),
                                noise, 1)
                    .value();
  auto train1 = ObserveWorkload(WorkloadGenerator(day1).Generate(500, 300),
                                noise, 2)
                    .value();
  auto test1 = ObserveWorkload(WorkloadGenerator(day1).Generate(600, 50),
                               noise, 3)
                   .value();
  Dataset test_dataset = DatasetBuilder().Build(test1).value();

  TasqOptions options = FastOptions();
  options.train_gnn = false;
  options.nn.epochs = 100;
  options.nn.learning_rate = 2e-3;
  Tasq stale(options);
  ASSERT_TRUE(stale.Train(train0).ok());
  Tasq fresh(options);
  ASSERT_TRUE(fresh.Train(train1).ok());

  auto stale_metrics =
      EvaluateModel(stale, ModelKind::kNn, test_dataset).value();
  auto fresh_metrics =
      EvaluateModel(fresh, ModelKind::kNn, test_dataset).value();
  // The stale model faces a 2.5x calibration shift it cannot see in the
  // features; retraining must cut the error substantially.
  EXPECT_GT(stale_metrics.median_ae_runtime_percent,
            fresh_metrics.median_ae_runtime_percent + 20.0);
}

}  // namespace
}  // namespace tasq
