// Gap-filling tests for small utilities and edge cases across modules.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "common/status.h"
#include "common/table.h"
#include "common/text_io.h"
#include "ml/autograd.h"
#include "ml/matrix_io.h"
#include "selection/job_selection.h"
#include "workload/operators.h"

namespace tasq {
namespace {

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusFactoryTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::Ok().code(), StatusCode::kOk);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ScaleFromEnvTest, ParsesAndFallsBack) {
  ASSERT_EQ(setenv("TASQ_SCALE", "2.5", 1), 0);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 2.5);
  ASSERT_EQ(setenv("TASQ_SCALE", "garbage", 1), 0);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  ASSERT_EQ(setenv("TASQ_SCALE", "-3", 1), 0);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
  ASSERT_EQ(unsetenv("TASQ_SCALE"), 0);
  EXPECT_DOUBLE_EQ(ScaleFromEnv(), 1.0);
}

TEST(TextTableTest, ShortRowsPadAndLongRowsTruncate) {
  TextTable t({"a", "b"});
  t.AddRow({"only"});                     // Missing cell renders empty.
  t.AddRow({"x", "y", "dropped"});        // Extra cell dropped.
  std::string out = t.ToString();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextArchiveTest, ForceErrorLatches) {
  std::stringstream stream("a 1\n");
  TextArchiveReader reader(stream);
  reader.ForceError("caller-side check failed");
  EXPECT_FALSE(reader.status().ok());
  double v = 9.0;
  reader.Scalar("a", v);
  EXPECT_DOUBLE_EQ(v, 9.0);  // Untouched after latch.
}

TEST(TextArchiveTest, RejectsAbsurdVectorSize) {
  std::stringstream stream("v 99999999999999 1.0\n");
  TextArchiveReader reader(stream);
  std::vector<double> out;
  reader.Vector("v", out);
  EXPECT_FALSE(reader.status().ok());
}

TEST(MatrixIoTest, ShapeMismatchLatchesError) {
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  writer.Scalar("m.rows", static_cast<int64_t>(2));
  writer.Scalar("m.cols", static_cast<int64_t>(2));
  writer.Vector("m.data", {1.0, 2.0, 3.0});  // 3 != 2*2.
  TextArchiveReader reader(stream);
  Matrix m = LoadMatrix(reader, "m");
  EXPECT_EQ(m.size(), 0u);
}

TEST(AutogradEdgeTest, SoftplusExtremeInputsAreStable) {
  Var x = MakeConstant(Matrix::RowVector({-745.0, 0.0, 745.0}));
  Var y = Softplus(x);
  EXPECT_NEAR(y->value.At(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(y->value.At(0, 1), std::log(2.0), 1e-12);
  EXPECT_NEAR(y->value.At(0, 2), 745.0, 1e-9);
  for (double v : y->value.data()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(AutogradEdgeTest, ReluAndAbsAtZero) {
  Var x = MakeParameter(Matrix::RowVector({0.0}));
  Var loss = Mean(Add(Relu(x), Abs(x)));
  Backward(loss);
  // Subgradients at 0 are 0 by convention: no update pressure.
  EXPECT_DOUBLE_EQ(x->grad.At(0, 0), 0.0);
}

TEST(AutogradEdgeTest, DeepChainBackpropDoesNotOverflowStack) {
  // 2000 chained ops exercise the iterative topological sort.
  Var x = MakeParameter(Matrix::RowVector({1.0}));
  Var y = x;
  for (int i = 0; i < 2000; ++i) y = ScalarMul(y, 1.0);
  Var loss = Mean(y);
  Backward(loss);
  EXPECT_DOUBLE_EQ(x->grad.At(0, 0), 1.0);
}

TEST(OperatorEnumTest, TraitFlagsAreConsistent) {
  for (size_t i = 0; i < kPhysicalOperatorCount; ++i) {
    const OperatorTraits& traits =
        GetOperatorTraits(static_cast<PhysicalOperator>(i));
    // A leaf reads storage and therefore cannot be multi-input.
    if (traits.is_leaf) {
      EXPECT_FALSE(traits.is_multi_input) << traits.name;
    }
    // Repartitioning exchanges are single-input operators here.
    if (traits.repartitions) {
      EXPECT_FALSE(traits.is_multi_input) << traits.name;
    }
  }
}

TEST(JobSelectionEdgeTest, CapDisabledAllowsRepeats) {
  // One template dominating the pool: with the cap disabled the quota can
  // be filled entirely from it.
  std::vector<double> features;
  std::vector<double> summary;
  std::vector<int> templates;
  std::vector<size_t> pool;
  for (int i = 0; i < 100; ++i) {
    features.push_back(static_cast<double>(i % 10));
    summary.push_back(static_cast<double>(i));
    templates.push_back(0);  // Everything is the same "type".
    pool.push_back(static_cast<size_t>(i));
  }
  SelectionConfig config;
  config.num_clusters = 2;
  config.sample_size = 40;
  config.max_per_template = 0;  // Disabled.
  auto outcome = SelectRepresentativeJobs(features, 100, 1, summary,
                                          templates, pool, config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().selected.size(), 35u);
  // With a cap of 2 the same setup can select at most 2.
  config.max_per_template = 2;
  auto capped = SelectRepresentativeJobs(features, 100, 1, summary, templates,
                                         pool, config);
  ASSERT_TRUE(capped.ok());
  EXPECT_LE(capped.value().selected.size(), 2u);
}

}  // namespace
}  // namespace tasq
