#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "ml/autograd.h"
#include "ml/matrix.h"
#include "ml/optimizer.h"

namespace tasq {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
}

TEST(MatrixTest, RowAndColumnVectors) {
  Matrix row = Matrix::RowVector({1.0, 2.0, 3.0});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
  Matrix col = Matrix::ColumnVector({1.0, 2.0});
  EXPECT_EQ(col.rows(), 2u);
  EXPECT_EQ(col.cols(), 1u);
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  Matrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  Matrix back = t.Transposed();
  EXPECT_TRUE(back.SameShape(a));
  EXPECT_DOUBLE_EQ(back.At(1, 0), 4.0);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  Rng rng(3);
  Matrix w = Matrix::GlorotUniform(10, 20, rng);
  double limit = std::sqrt(6.0 / 30.0);
  for (double v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

// Numeric gradient check: builds a scalar loss from `forward` applied to a
// parameter and compares autograd against central differences.
void CheckGradients(Matrix initial,
                    const std::function<Var(const Var&)>& forward,
                    double tolerance = 1e-6) {
  Var param = MakeParameter(initial);
  Var loss = forward(param);
  Backward(loss);
  Matrix analytic = param->grad;
  const double eps = 1e-6;
  for (size_t i = 0; i < initial.size(); ++i) {
    Matrix plus = initial;
    plus.data()[i] += eps;
    Matrix minus = initial;
    minus.data()[i] -= eps;
    double f_plus = forward(MakeConstant(plus))->value.At(0, 0);
    double f_minus = forward(MakeConstant(minus))->value.At(0, 0);
    double numeric = (f_plus - f_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tolerance) << "element " << i;
  }
}

TEST(AutogradTest, GradCheckMatMulChain) {
  Rng rng(1);
  Matrix x(3, 4);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix w0(4, 2);
  for (double& v : w0.data()) v = rng.Uniform(-1.0, 1.0);
  Var input = MakeConstant(x);
  CheckGradients(w0, [&](const Var& w) {
    return Mean(Tanh(MatMul(input, w)));
  });
}

TEST(AutogradTest, GradCheckBiasBroadcast) {
  Rng rng(2);
  Matrix x(5, 3);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Var input = MakeConstant(x);
  Matrix bias(1, 3);
  for (double& v : bias.data()) v = rng.Uniform(-0.5, 0.5);
  CheckGradients(bias, [&](const Var& b) {
    return Mean(Sigmoid(Add(input, b)));
  });
}

TEST(AutogradTest, GradCheckSoftplusAbsExp) {
  Rng rng(3);
  Matrix x(4, 2);
  for (double& v : x.data()) v = rng.Uniform(-2.0, 2.0);
  CheckGradients(x, [&](const Var& v) {
    return Sum(Softplus(v));
  });
  CheckGradients(x, [&](const Var& v) {
    return Mean(Exp(ScalarMul(v, 0.3)));
  });
  // Abs away from zero.
  Matrix y(3, 3);
  for (double& v : y.data()) v = rng.Uniform(0.5, 2.0) * (rng.Bernoulli(0.5) ? 1 : -1);
  CheckGradients(y, [&](const Var& v) { return Mean(Abs(v)); });
}

TEST(AutogradTest, GradCheckMulSubTransposeMeanRows) {
  Rng rng(4);
  Matrix x(3, 3);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix other(3, 3);
  for (double& v : other.data()) v = rng.Uniform(-1.0, 1.0);
  Var constant = MakeConstant(other);
  CheckGradients(x, [&](const Var& v) {
    return Sum(Mul(Sub(v, constant), Transpose(v)));
  });
  CheckGradients(x, [&](const Var& v) {
    return Sum(MeanRows(Relu(v)));
  });
}

TEST(AutogradTest, GradCheckAttentionPattern) {
  // The full SimGNN-style pooling expression the GNN model uses.
  Rng rng(5);
  size_t n = 4;
  size_t d = 3;
  Matrix h(n, d);
  for (double& v : h.data()) v = rng.Uniform(-1.0, 1.0);
  Var hidden = MakeConstant(h);
  Matrix wc(d, d);
  for (double& v : wc.data()) v = rng.Uniform(-1.0, 1.0);
  CheckGradients(wc, [&](const Var& w) {
    Var context = Tanh(MatMul(MeanRows(hidden), w));
    Var scores = Sigmoid(MatMul(hidden, Transpose(context)));
    Var pooled = MatMul(Transpose(scores), hidden);
    return Mean(pooled);
  });
}

TEST(AutogradTest, ConcatColsForwardLayout) {
  Var a = MakeConstant(Matrix(2, 2, {1, 2, 3, 4}));
  Var b = MakeConstant(Matrix(2, 1, {5, 6}));
  Var c = ConcatCols(a, b);
  EXPECT_EQ(c->value.rows(), 2u);
  EXPECT_EQ(c->value.cols(), 3u);
  EXPECT_DOUBLE_EQ(c->value.At(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(c->value.At(1, 0), 3.0);
}

TEST(AutogradTest, GradCheckConcatCols) {
  Rng rng(6);
  Matrix x(3, 2);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix other(3, 2);
  for (double& v : other.data()) v = rng.Uniform(-1.0, 1.0);
  Var constant = MakeConstant(other);
  Matrix w(4, 2);
  for (double& v : w.data()) v = rng.Uniform(-1.0, 1.0);
  Var weights = MakeConstant(w);
  CheckGradients(x, [&](const Var& v) {
    return Mean(Tanh(MatMul(ConcatCols(v, constant), weights)));
  });
  // Gradient also flows through the right operand.
  CheckGradients(other, [&](const Var& v) {
    Var left = MakeConstant(x);
    return Mean(Tanh(MatMul(ConcatCols(left, v), weights)));
  });
}

TEST(AutogradTest, GradientAccumulatesWhenParameterUsedTwice) {
  Matrix x(1, 1, {2.0});
  Var p = MakeParameter(x);
  // loss = p * p -> d/dp = 2p = 4.
  Var loss = Mean(Mul(p, p));
  Backward(loss);
  EXPECT_NEAR(p->grad.At(0, 0), 4.0, 1e-12);
}

TEST(AutogradTest, MaeLossValueAndGradient) {
  Var pred = MakeParameter(Matrix::ColumnVector({1.0, 5.0}));
  Var target = MakeConstant(Matrix::ColumnVector({2.0, 3.0}));
  Var loss = MaeLoss(pred, target);
  EXPECT_NEAR(loss->value.At(0, 0), (1.0 + 2.0) / 2.0, 1e-12);
  Backward(loss);
  EXPECT_NEAR(pred->grad.At(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(pred->grad.At(1, 0), 0.5, 1e-12);
}

TEST(AdamTest, MinimizesSimpleQuadratic) {
  // Minimize ||x - c||^2 from zero.
  Var x = MakeParameter(Matrix::RowVector({0.0, 0.0, 0.0}));
  Matrix target_m = Matrix::RowVector({1.0, -2.0, 3.0});
  Var target = MakeConstant(target_m);
  AdamOptimizer adam({x}, {.learning_rate = 0.05});
  for (int step = 0; step < 500; ++step) {
    Var diff = Sub(x, target);
    Var loss = Mean(Mul(diff, diff));
    Backward(loss);
    adam.Step();
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x->value.data()[i], target_m.data()[i], 1e-2);
  }
}

TEST(SgdTest, MinimizesSimpleQuadratic) {
  Var x = MakeParameter(Matrix::RowVector({5.0}));
  SgdOptimizer sgd({x}, 0.1, 0.5);
  for (int step = 0; step < 200; ++step) {
    Var loss = Mean(Mul(x, x));
    Backward(loss);
    sgd.Step();
  }
  EXPECT_NEAR(x->value.At(0, 0), 0.0, 1e-3);
}

TEST(OptimizerTest, CountParameters) {
  Var a = MakeParameter(Matrix(3, 4));
  Var b = MakeParameter(Matrix(1, 5));
  EXPECT_EQ(CountParameters({a, b}), 17);
}

}  // namespace
}  // namespace tasq
