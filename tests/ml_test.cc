#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "ml/autograd.h"
#include "ml/kernels.h"
#include "ml/matrix.h"
#include "ml/optimizer.h"

namespace tasq {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 7.0);
}

TEST(MatrixTest, RowAndColumnVectors) {
  Matrix row = Matrix::RowVector({1.0, 2.0, 3.0});
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
  Matrix col = Matrix::ColumnVector({1.0, 2.0});
  EXPECT_EQ(col.rows(), 2u);
  EXPECT_EQ(col.cols(), 1u);
}

TEST(MatrixTest, MatMulKnownResult) {
  Matrix a(2, 2, {1.0, 2.0, 3.0, 4.0});
  Matrix b(2, 2, {5.0, 6.0, 7.0, 8.0});
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50.0);
}

TEST(MatrixTest, TransposedRoundTrip) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.At(2, 1), 6.0);
  Matrix back = t.Transposed();
  EXPECT_TRUE(back.SameShape(a));
  EXPECT_DOUBLE_EQ(back.At(1, 0), 4.0);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  Rng rng(3);
  Matrix w = Matrix::GlorotUniform(10, 20, rng);
  double limit = std::sqrt(6.0 / 30.0);
  for (double v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

// Numeric gradient check: builds a scalar loss from `forward` applied to a
// parameter and compares autograd against central differences.
void CheckGradients(Matrix initial,
                    const std::function<Var(const Var&)>& forward,
                    double tolerance = 1e-6) {
  Var param = MakeParameter(initial);
  Var loss = forward(param);
  Backward(loss);
  Matrix analytic = param->grad;
  const double eps = 1e-6;
  for (size_t i = 0; i < initial.size(); ++i) {
    Matrix plus = initial;
    plus.data()[i] += eps;
    Matrix minus = initial;
    minus.data()[i] -= eps;
    double f_plus = forward(MakeConstant(plus))->value.At(0, 0);
    double f_minus = forward(MakeConstant(minus))->value.At(0, 0);
    double numeric = (f_plus - f_minus) / (2.0 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric, tolerance) << "element " << i;
  }
}

TEST(AutogradTest, GradCheckMatMulChain) {
  Rng rng(1);
  Matrix x(3, 4);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix w0(4, 2);
  for (double& v : w0.data()) v = rng.Uniform(-1.0, 1.0);
  Var input = MakeConstant(x);
  CheckGradients(w0, [&](const Var& w) {
    return Mean(Tanh(MatMul(input, w)));
  });
}

TEST(AutogradTest, GradCheckBiasBroadcast) {
  Rng rng(2);
  Matrix x(5, 3);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Var input = MakeConstant(x);
  Matrix bias(1, 3);
  for (double& v : bias.data()) v = rng.Uniform(-0.5, 0.5);
  CheckGradients(bias, [&](const Var& b) {
    return Mean(Sigmoid(Add(input, b)));
  });
}

TEST(AutogradTest, GradCheckSoftplusAbsExp) {
  Rng rng(3);
  Matrix x(4, 2);
  for (double& v : x.data()) v = rng.Uniform(-2.0, 2.0);
  CheckGradients(x, [&](const Var& v) {
    return Sum(Softplus(v));
  });
  CheckGradients(x, [&](const Var& v) {
    return Mean(Exp(ScalarMul(v, 0.3)));
  });
  // Abs away from zero.
  Matrix y(3, 3);
  for (double& v : y.data()) v = rng.Uniform(0.5, 2.0) * (rng.Bernoulli(0.5) ? 1 : -1);
  CheckGradients(y, [&](const Var& v) { return Mean(Abs(v)); });
}

TEST(AutogradTest, GradCheckMulSubTransposeMeanRows) {
  Rng rng(4);
  Matrix x(3, 3);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix other(3, 3);
  for (double& v : other.data()) v = rng.Uniform(-1.0, 1.0);
  Var constant = MakeConstant(other);
  CheckGradients(x, [&](const Var& v) {
    return Sum(Mul(Sub(v, constant), Transpose(v)));
  });
  CheckGradients(x, [&](const Var& v) {
    return Sum(MeanRows(Relu(v)));
  });
}

TEST(AutogradTest, GradCheckAttentionPattern) {
  // The full SimGNN-style pooling expression the GNN model uses.
  Rng rng(5);
  size_t n = 4;
  size_t d = 3;
  Matrix h(n, d);
  for (double& v : h.data()) v = rng.Uniform(-1.0, 1.0);
  Var hidden = MakeConstant(h);
  Matrix wc(d, d);
  for (double& v : wc.data()) v = rng.Uniform(-1.0, 1.0);
  CheckGradients(wc, [&](const Var& w) {
    Var context = Tanh(MatMul(MeanRows(hidden), w));
    Var scores = Sigmoid(MatMul(hidden, Transpose(context)));
    Var pooled = MatMul(Transpose(scores), hidden);
    return Mean(pooled);
  });
}

TEST(AutogradTest, ConcatColsForwardLayout) {
  Var a = MakeConstant(Matrix(2, 2, {1, 2, 3, 4}));
  Var b = MakeConstant(Matrix(2, 1, {5, 6}));
  Var c = ConcatCols(a, b);
  EXPECT_EQ(c->value.rows(), 2u);
  EXPECT_EQ(c->value.cols(), 3u);
  EXPECT_DOUBLE_EQ(c->value.At(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(c->value.At(1, 0), 3.0);
}

TEST(AutogradTest, GradCheckConcatCols) {
  Rng rng(6);
  Matrix x(3, 2);
  for (double& v : x.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix other(3, 2);
  for (double& v : other.data()) v = rng.Uniform(-1.0, 1.0);
  Var constant = MakeConstant(other);
  Matrix w(4, 2);
  for (double& v : w.data()) v = rng.Uniform(-1.0, 1.0);
  Var weights = MakeConstant(w);
  CheckGradients(x, [&](const Var& v) {
    return Mean(Tanh(MatMul(ConcatCols(v, constant), weights)));
  });
  // Gradient also flows through the right operand.
  CheckGradients(other, [&](const Var& v) {
    Var left = MakeConstant(x);
    return Mean(Tanh(MatMul(ConcatCols(left, v), weights)));
  });
}

TEST(AutogradTest, GradientAccumulatesWhenParameterUsedTwice) {
  Matrix x(1, 1, {2.0});
  Var p = MakeParameter(x);
  // loss = p * p -> d/dp = 2p = 4.
  Var loss = Mean(Mul(p, p));
  Backward(loss);
  EXPECT_NEAR(p->grad.At(0, 0), 4.0, 1e-12);
}

TEST(AutogradTest, MaeLossValueAndGradient) {
  Var pred = MakeParameter(Matrix::ColumnVector({1.0, 5.0}));
  Var target = MakeConstant(Matrix::ColumnVector({2.0, 3.0}));
  Var loss = MaeLoss(pred, target);
  EXPECT_NEAR(loss->value.At(0, 0), (1.0 + 2.0) / 2.0, 1e-12);
  Backward(loss);
  EXPECT_NEAR(pred->grad.At(0, 0), -0.5, 1e-12);
  EXPECT_NEAR(pred->grad.At(1, 0), 0.5, 1e-12);
}

TEST(AdamTest, MinimizesSimpleQuadratic) {
  // Minimize ||x - c||^2 from zero.
  Var x = MakeParameter(Matrix::RowVector({0.0, 0.0, 0.0}));
  Matrix target_m = Matrix::RowVector({1.0, -2.0, 3.0});
  Var target = MakeConstant(target_m);
  AdamOptimizer adam({x}, {.learning_rate = 0.05});
  for (int step = 0; step < 500; ++step) {
    Var diff = Sub(x, target);
    Var loss = Mean(Mul(diff, diff));
    Backward(loss);
    adam.Step();
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x->value.data()[i], target_m.data()[i], 1e-2);
  }
}

TEST(SgdTest, MinimizesSimpleQuadratic) {
  Var x = MakeParameter(Matrix::RowVector({5.0}));
  SgdOptimizer sgd({x}, 0.1, 0.5);
  for (int step = 0; step < 200; ++step) {
    Var loss = Mean(Mul(x, x));
    Backward(loss);
    sgd.Step();
  }
  EXPECT_NEAR(x->value.At(0, 0), 0.0, 1e-3);
}

TEST(OptimizerTest, CountParameters) {
  Var a = MakeParameter(Matrix(3, 4));
  Var b = MakeParameter(Matrix(1, 5));
  EXPECT_EQ(CountParameters({a, b}), 17);
}

// ---------------------------------------------------------------------------
// SIMD kernel conformance: the batch-major kernels (ml/kernels.h) must be
// bit-identical to the pre-vectorization scalar paths wherever the
// reduction order is unchanged. EXPECT_EQ on doubles is deliberate — the
// contract is "same bytes", not "close".
// ---------------------------------------------------------------------------

// The historical Matrix::MatMul inner kernel: i,k,j order with the
// exact-zero skip the scalar path used. MatMulAccum drops the skip (a
// branch kills vectorization) — for finite inputs `out += 0.0 * b` is a
// bit-exact no-op, which these tests prove on matrices salted with
// exact zeros.
Matrix ScalarMatMulReference(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      double av = a.At(i, k);
      if (av == 0.0) continue;  // num: float-eq exact-zero skip replica
      for (size_t j = 0; j < b.cols(); ++j) {
        out.At(i, j) += av * b.At(k, j);
      }
    }
  }
  return out;
}

Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, double zero_frac) {
  Matrix m(rows, cols);
  for (double& v : m.data()) {
    v = rng.Uniform(0.0, 1.0) < zero_frac ? 0.0 : rng.Uniform(-2.0, 2.0);
  }
  return m;
}

TEST(MatrixKernelTest, MatMulBitIdenticalToScalarReference) {
  Rng rng(99);
  // Shapes straddle every kernel boundary: cols not a multiple of the
  // 2-lane SSE width or the 4-wide unroll, inner dims hitting both the
  // k-unrolled body and the remainder loop, plus a zero-salted operand
  // to cover the dropped exact-zero skip.
  const size_t shapes[][3] = {
      {1, 1, 1}, {1, 4, 1}, {2, 3, 5}, {3, 5, 7}, {4, 8, 4},
      {5, 2, 9}, {7, 13, 3}, {8, 1, 6},
  };
  for (const auto& shape : shapes) {
    Matrix a = RandomMatrix(shape[0], shape[1], rng, 0.3);
    Matrix b = RandomMatrix(shape[1], shape[2], rng, 0.0);
    Matrix got = a.MatMul(b);
    Matrix want = ScalarMatMulReference(a, b);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got.data()[i], want.data()[i])
          << shape[0] << "x" << shape[1] << "*" << shape[2]
          << " elem " << i;
    }
  }
}

TEST(MatrixKernelTest, MatMulEdgeShapesEmptyDimensions) {
  // 0xN, Nx0, and zero inner dimension must produce well-formed
  // all-zero results, not UB — these exercise the n==0 guards in the
  // raw-span kernels.
  Matrix a0(0, 3);
  Matrix b0(3, 4);
  Matrix c0 = a0.MatMul(b0);
  EXPECT_EQ(c0.rows(), 0u);
  EXPECT_EQ(c0.cols(), 4u);

  Matrix a1(2, 0);
  Matrix b1(0, 4);
  Matrix c1 = a1.MatMul(b1);
  EXPECT_EQ(c1.rows(), 2u);
  EXPECT_EQ(c1.cols(), 4u);
  for (size_t i = 0; i < c1.size(); ++i) EXPECT_EQ(c1.data()[i], 0.0);

  Matrix a2(2, 3);
  Matrix b2(3, 0);
  Matrix c2 = a2.MatMul(b2);
  EXPECT_EQ(c2.rows(), 2u);
  EXPECT_EQ(c2.cols(), 0u);
  EXPECT_EQ(c2.size(), 0u);
}

TEST(MatrixKernelTest, ElementwiseOpsBitIdenticalToScalarLoops) {
  Rng rng(7);
  // 11 elements: 5 full 2-lane vectors plus a scalar tail.
  Matrix a = RandomMatrix(1, 11, rng, 0.0);
  Matrix b = RandomMatrix(1, 11, rng, 0.0);
  Matrix add = a;
  add.AddInPlace(b);
  Matrix axpy = a;
  axpy.AddScaledInPlace(b, -1.7);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(add.data()[i], a.data()[i] + b.data()[i]);
    EXPECT_EQ(axpy.data()[i], a.data()[i] + -1.7 * b.data()[i]);
  }
}

TEST(MatrixKernelTest, SumMatchesFixedFourLaneReference) {
  Rng rng(11);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 64u, 101u}) {
    Matrix m = RandomMatrix(1, n, rng, 0.0);
    const double* x = m.data().data();
    double want;
    if (n < 4) {
      // Degenerate shapes fold left-to-right, same as the historical
      // scalar sum.
      want = 0.0;
      for (size_t i = 0; i < n; ++i) want += x[i];
    } else {
      // The documented reduction: four strided lanes in source order,
      // combined (l0+l1)+(l2+l3), tail left-to-right.
      double lane[4] = {0.0, 0.0, 0.0, 0.0};
      size_t n4 = n - n % 4;
      for (size_t i = 0; i < n4; i += 4) {
        for (size_t l = 0; l < 4; ++l) lane[l] += x[i + l];
      }
      want = (lane[0] + lane[1]) + (lane[2] + lane[3]);
      for (size_t i = n4; i < n; ++i) want += x[i];
    }
    EXPECT_EQ(m.Sum(), want) << "n=" << n;
    EXPECT_EQ(VecSum(x, n), want) << "n=" << n;
  }
}

TEST(MatrixKernelTest, DotMatchesFixedFourLaneReference) {
  Rng rng(13);
  for (size_t n : {1u, 3u, 4u, 9u, 33u}) {
    Matrix a = RandomMatrix(1, n, rng, 0.0);
    Matrix b = RandomMatrix(1, n, rng, 0.0);
    const double* x = a.data().data();
    const double* y = b.data().data();
    double want;
    if (n < 4) {
      want = 0.0;
      for (size_t i = 0; i < n; ++i) want += x[i] * y[i];
    } else {
      double lane[4] = {0.0, 0.0, 0.0, 0.0};
      size_t n4 = n - n % 4;
      for (size_t i = 0; i < n4; i += 4) {
        for (size_t l = 0; l < 4; ++l) lane[l] += x[i + l] * y[i + l];
      }
      want = (lane[0] + lane[1]) + (lane[2] + lane[3]);
      for (size_t i = n4; i < n; ++i) want += x[i] * y[i];
    }
    EXPECT_EQ(VecDot(x, y, n), want) << "n=" << n;
  }
}

TEST(MatrixKernelTest, BiasReluFusionBitIdenticalToUnfusedOps) {
  Rng rng(17);
  Matrix o = RandomMatrix(1, 9, rng, 0.0);
  Matrix bias = RandomMatrix(1, 9, rng, 0.0);
  Matrix fused = o;
  VecBiasRelu(fused.data().data(), bias.data().data(), 9);
  for (size_t i = 0; i < 9; ++i) {
    double v = o.data()[i] + bias.data()[i];
    EXPECT_EQ(fused.data()[i], v > 0.0 ? v : 0.0);
  }
}

TEST(MatrixKernelTest, MatMulAccumAccumulatesOntoPartialSums) {
  // `out` need not start zeroed: the kernel contract is +=, which the
  // layered NN forward relies on never silently becoming =.
  Rng rng(19);
  Matrix a = RandomMatrix(2, 3, rng, 0.0);
  Matrix b = RandomMatrix(3, 4, rng, 0.0);
  Matrix out = RandomMatrix(2, 4, rng, 0.0);
  // The reference accumulates in the same k order onto the same partial
  // sums — adding a separately-computed product would round differently.
  Matrix expected = out;
  for (size_t i = 0; i < 2u; ++i) {
    for (size_t k = 0; k < 3u; ++k) {
      for (size_t j = 0; j < 4u; ++j) {
        expected.At(i, j) += a.At(i, k) * b.At(k, j);
      }
    }
  }
  MatMulAccum(out.data().data(), a.data().data(), b.data().data(), 2, 3, 4);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], expected.data()[i]);
  }
}

}  // namespace
}  // namespace tasq
