#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "nn/nn_model.h"
#include "nn/pcc_loss.h"

namespace tasq {
namespace {

TEST(PccTargetScalingTest, FitAndRoundTrip) {
  std::vector<PowerLawPcc> targets = {
      {-0.2, 100.0}, {-0.5, 500.0}, {-0.9, 2000.0}, {-0.4, 50.0}};
  Result<PccTargetScaling> scaling = PccTargetScaling::Fit(targets);
  ASSERT_TRUE(scaling.ok());
  for (const PowerLawPcc& t : targets) {
    auto [t1, t2] = scaling.value().ToScaled(t);
    PowerLawPcc back = scaling.value().FromScaled(t1, t2);
    EXPECT_NEAR(back.a, t.a, 1e-9);
    EXPECT_NEAR(back.b, t.b, 1e-6);
  }
}

TEST(PccTargetScalingTest, FromScaledAlwaysMonotone) {
  PccTargetScaling scaling(0.3, 1.5);
  // Any real (p1, p2) must map to a monotone non-increasing curve.
  for (double p1 : {-3.0, -0.1, 0.0, 0.4, 7.0}) {
    for (double p2 : {-5.0, 0.0, 4.0}) {
      PowerLawPcc pcc = scaling.FromScaled(p1, p2);
      EXPECT_TRUE(pcc.IsMonotoneNonIncreasing());
      EXPECT_GT(pcc.b, 0.0);
      EXPECT_LE(pcc.a, 0.0);
    }
  }
}

TEST(PccTargetScalingTest, RejectsEmptyTargets) {
  EXPECT_FALSE(PccTargetScaling::Fit({}).ok());
}

TEST(PccTargetScalingTest, RejectsNonFiniteTargets) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      PccTargetScaling::Fit({{-0.5, 100.0}, {kNan, 200.0}}).ok());
  EXPECT_FALSE(
      PccTargetScaling::Fit({{-0.5, 100.0}, {-0.4, kNan}}).ok());
  EXPECT_FALSE(
      PccTargetScaling::Fit({{-kInf, 100.0}, {-0.4, 200.0}}).ok());
  EXPECT_FALSE(
      PccTargetScaling::Fit({{-0.5, kInf}, {-0.4, 200.0}}).ok());
}

TEST(PccTargetScalingTest, DegenerateTargetsGetFloorScales) {
  // Identical targets have zero variance; scales must stay positive.
  std::vector<PowerLawPcc> targets(5, PowerLawPcc{-0.5, 100.0});
  Result<PccTargetScaling> scaling = PccTargetScaling::Fit(targets);
  ASSERT_TRUE(scaling.ok());
  EXPECT_GT(scaling.value().s1(), 0.0);
  EXPECT_GT(scaling.value().s2(), 0.0);
}

TEST(DefaultLossWeightsTest, FormsAreOrdered) {
  LossWeights lf1 = DefaultLossWeights(LossForm::kLF1);
  LossWeights lf2 = DefaultLossWeights(LossForm::kLF2);
  LossWeights lf3 = DefaultLossWeights(LossForm::kLF3);
  EXPECT_EQ(lf1.runtime_percent, 0.0);
  EXPECT_EQ(lf1.transfer_percent, 0.0);
  EXPECT_GT(lf2.runtime_percent, 0.0);
  EXPECT_EQ(lf2.transfer_percent, 0.0);
  EXPECT_GT(lf3.transfer_percent, 0.0);
}

TEST(BuildPccLossTest, Lf1MatchesHandComputation) {
  PccTargetScaling scaling(1.0, 1.0);
  Var p1 = MakeConstant(Matrix::ColumnVector({1.0}));
  Var p2 = MakeConstant(Matrix::ColumnVector({2.0}));
  PccLossBatch batch;
  batch.scaled_targets = {1.5, 1.0};  // |1-1.5| = .5, |2-1| = 1 -> 0.5*(1.5)/1.
  Result<Var> loss =
      BuildPccLoss(p1, p2, scaling, batch, DefaultLossWeights(LossForm::kLF1));
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(loss.value()->value.At(0, 0), 0.5 * (0.5 + 1.0), 1e-12);
}

TEST(BuildPccLossTest, Lf2RuntimeTermIsExact) {
  // With s1 = s2 = 1, p1 = 0.5, p2 = log(100), tokens = e^2:
  // runtime = exp(log(100) - 0.5 * 2) = 100/e.
  PccTargetScaling scaling(1.0, 1.0);
  double log_b = std::log(100.0);
  Var p1 = MakeConstant(Matrix::ColumnVector({0.5}));
  Var p2 = MakeConstant(Matrix::ColumnVector({log_b}));
  PccLossBatch batch;
  batch.scaled_targets = {0.5, log_b};  // Param term = 0.
  batch.observed_tokens = {std::exp(2.0)};
  double expected_runtime = 100.0 / std::exp(1.0);
  batch.observed_runtime = {expected_runtime};
  LossWeights weights{1.0, 0.0};
  Result<Var> loss = BuildPccLoss(p1, p2, scaling, batch, weights);
  ASSERT_TRUE(loss.ok());
  EXPECT_NEAR(loss.value()->value.At(0, 0), 0.0, 1e-9);
  // Shifting the observed runtime by 10% yields ~0.0909 percent-fraction.
  batch.observed_runtime = {expected_runtime * 1.1};
  Result<Var> shifted = BuildPccLoss(p1, p2, scaling, batch, weights);
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(shifted.value()->value.At(0, 0), 0.1 / 1.1, 1e-9);
}

TEST(BuildPccLossTest, ValidatesInput) {
  PccTargetScaling scaling(1.0, 1.0);
  Var p1 = MakeConstant(Matrix::ColumnVector({1.0}));
  Var p2 = MakeConstant(Matrix::ColumnVector({1.0}));
  PccLossBatch batch;  // Missing targets.
  EXPECT_FALSE(
      BuildPccLoss(p1, p2, scaling, batch, DefaultLossWeights(LossForm::kLF1))
          .ok());
  batch.scaled_targets = {1.0, 1.0};
  // LF2 without observed tokens.
  EXPECT_FALSE(
      BuildPccLoss(p1, p2, scaling, batch, DefaultLossWeights(LossForm::kLF2))
          .ok());
  batch.observed_tokens = {10.0};
  batch.observed_runtime = {0.0};  // Non-positive reference.
  EXPECT_FALSE(
      BuildPccLoss(p1, p2, scaling, batch, DefaultLossWeights(LossForm::kLF2))
          .ok());
}

TEST(BuildPccLossTest, RejectsNonFiniteSupervision) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  PccTargetScaling scaling(1.0, 1.0);
  Var p1 = MakeConstant(Matrix::ColumnVector({1.0}));
  Var p2 = MakeConstant(Matrix::ColumnVector({1.0}));
  PccLossBatch batch;
  batch.scaled_targets = {1.0, 1.0};
  LossWeights weights = DefaultLossWeights(LossForm::kLF2);
  batch.observed_tokens = {kNan};
  batch.observed_runtime = {5.0};
  EXPECT_FALSE(BuildPccLoss(p1, p2, scaling, batch, weights).ok());
  batch.observed_tokens = {10.0};
  batch.observed_runtime = {kInf};
  EXPECT_FALSE(BuildPccLoss(p1, p2, scaling, batch, weights).ok());
  batch.observed_runtime = {kNan};
  EXPECT_FALSE(BuildPccLoss(p1, p2, scaling, batch, weights).ok());
}

// Synthetic PCC regression task: features determine (a, b) through a known
// relationship; the NN must learn it.
struct SyntheticSet {
  std::vector<double> features;
  PccSupervision supervision;
  size_t dim = 3;
};

SyntheticSet MakeSynthetic(size_t n, uint64_t seed) {
  SyntheticSet set;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double f0 = rng.Uniform(-1.0, 1.0);
    double f1 = rng.Uniform(-1.0, 1.0);
    double f2 = rng.Uniform(-1.0, 1.0);
    set.features.insert(set.features.end(), {f0, f1, f2});
    PowerLawPcc target;
    target.a = -(0.5 + 0.3 * f0 + 0.15 * f1);  // In [-0.95, -0.05].
    target.b = std::exp(6.0 + 1.2 * f2);
    set.supervision.targets.push_back(target);
    double tokens = std::exp(rng.Uniform(2.0, 5.0));
    set.supervision.observed_tokens.push_back(tokens);
    set.supervision.observed_runtime.push_back(target.EvalRunTime(tokens));
  }
  return set;
}

TEST(NnPccModelTest, LearnsSyntheticRelationship) {
  SyntheticSet train = MakeSynthetic(600, 1);
  NnOptions options;
  options.epochs = 120;
  options.loss_form = LossForm::kLF2;
  options.seed = 7;
  NnPccModel model(train.dim, options);
  Result<double> final_loss = model.Train(train.features, train.supervision);
  ASSERT_TRUE(final_loss.ok());

  SyntheticSet test = MakeSynthetic(100, 2);
  std::vector<double> a_err;
  for (size_t i = 0; i < 100; ++i) {
    std::vector<double> row(test.features.begin() + static_cast<long>(3 * i),
                            test.features.begin() + static_cast<long>(3 * i + 3));
    Result<PowerLawPcc> pcc = model.Predict(row);
    ASSERT_TRUE(pcc.ok());
    EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
    a_err.push_back(std::fabs(pcc.value().a - test.supervision.targets[i].a));
  }
  double mean_a_err = 0.0;
  for (double e : a_err) mean_a_err += e;
  mean_a_err /= static_cast<double>(a_err.size());
  // Exponent range spans ~0.9; a useful model gets well under 0.15 mean
  // error (predicting the mean exponent would give ~0.19).
  EXPECT_LT(mean_a_err, 0.15);
}

TEST(NnPccModelTest, PredictionsAlwaysMonotoneEvenUntrainedWeights) {
  SyntheticSet train = MakeSynthetic(50, 3);
  NnOptions options;
  options.epochs = 1;  // Barely trained: constraint must still hold.
  NnPccModel model(train.dim, options);
  ASSERT_TRUE(model.Train(train.features, train.supervision).ok());
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row = {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0),
                               rng.Uniform(-3.0, 3.0)};
    Result<PowerLawPcc> pcc = model.Predict(row);
    ASSERT_TRUE(pcc.ok());
    EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
  }
}

TEST(NnPccModelTest, ParameterCountMatchesArchitecture) {
  NnOptions options;
  options.hidden_sizes = {32, 16};
  NnPccModel model(51, options);
  // 51*32+32 + 32*16+16 + (16+1)*2 heads.
  EXPECT_EQ(model.NumParameters(), 51 * 32 + 32 + 32 * 16 + 16 + 2 * 17);
}

TEST(NnPccModelTest, RejectsBadInput) {
  NnPccModel model(3, NnOptions{});
  EXPECT_FALSE(model.Predict({1.0, 2.0, 3.0}).ok());  // Untrained.
  SyntheticSet train = MakeSynthetic(10, 4);
  std::vector<double> wrong_size(train.features.begin(),
                                 train.features.end() - 1);
  EXPECT_FALSE(model.Train(wrong_size, train.supervision).ok());
  // LF3 without xgb predictions.
  NnOptions lf3;
  lf3.loss_form = LossForm::kLF3;
  NnPccModel lf3_model(3, lf3);
  EXPECT_FALSE(lf3_model.Train(train.features, train.supervision).ok());
}

TEST(NnPccModelTest, EarlyStoppingTrainsAndGeneralizes) {
  SyntheticSet train = MakeSynthetic(400, 8);
  NnOptions options;
  options.epochs = 300;
  options.validation_fraction = 0.2;
  options.early_stopping_patience = 12;
  options.seed = 3;
  NnPccModel model(train.dim, options);
  Result<double> best_val = model.Train(train.features, train.supervision);
  ASSERT_TRUE(best_val.ok());
  EXPECT_GT(best_val.value(), 0.0);
  SyntheticSet test = MakeSynthetic(80, 9);
  double mean_a_err = 0.0;
  for (size_t i = 0; i < 80; ++i) {
    std::vector<double> row(test.features.begin() + static_cast<long>(3 * i),
                            test.features.begin() + static_cast<long>(3 * i + 3));
    Result<PowerLawPcc> pcc = model.Predict(row);
    ASSERT_TRUE(pcc.ok());
    mean_a_err += std::fabs(pcc.value().a - test.supervision.targets[i].a);
  }
  EXPECT_LT(mean_a_err / 80.0, 0.15);
}

TEST(NnPccModelTest, EarlyStoppingDeterministic) {
  SyntheticSet train = MakeSynthetic(100, 10);
  NnOptions options;
  options.epochs = 60;
  options.validation_fraction = 0.25;
  options.seed = 4;
  NnPccModel a(train.dim, options);
  NnPccModel b(train.dim, options);
  double loss_a = a.Train(train.features, train.supervision).value_or(-1);
  double loss_b = b.Train(train.features, train.supervision).value_or(-2);
  EXPECT_DOUBLE_EQ(loss_a, loss_b);
  std::vector<double> row = {0.3, -0.2, 0.7};
  EXPECT_DOUBLE_EQ(a.Predict(row).value().a, b.Predict(row).value().a);
}

TEST(NnPccModelTest, Lf3TrainsWithTransferPredictions) {
  SyntheticSet train = MakeSynthetic(100, 5);
  // Pretend XGBoost predictions: the true runtime with mild distortion.
  for (size_t i = 0; i < train.supervision.size(); ++i) {
    train.supervision.xgb_runtime.push_back(
        train.supervision.observed_runtime[i] * 1.05);
  }
  NnOptions options;
  options.loss_form = LossForm::kLF3;
  options.epochs = 10;
  NnPccModel model(train.dim, options);
  EXPECT_TRUE(model.Train(train.features, train.supervision).ok());
}

}  // namespace
}  // namespace tasq
