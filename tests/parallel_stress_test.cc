// Race-stress suite for the parallel core. Designed to run under
// ThreadSanitizer (scripts/check.sh tsan): every pattern here is one the
// later perf PRs will lean on, so a regression that introduces a data race
// or breaks the exception contract fails this binary before it ships.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"

namespace tasq {
namespace {

// Shared-slot writes: the canonical usage pattern (each index owns slot i
// of a pre-sized vector). TSan must see no race between distinct slots or
// with the final read after join.
TEST(ParallelStressTest, SharedSlotWritesAreRaceFree) {
  const size_t n = 10000;
  std::vector<double> out(n, 0.0);
  ParallelFor(n, [&](size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * static_cast<double>(n) * (n - 1) / 2.0);
}

// A mutex-guarded shared accumulator must also be clean: the loop makes no
// assumptions about bodies being disjoint as long as they synchronize.
TEST(ParallelStressTest, MutexGuardedAccumulatorIsRaceFree) {
  const size_t n = 5000;
  std::mutex mutex;
  long total = 0;
  ParallelFor(n, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    total += static_cast<long>(i);
  });
  EXPECT_EQ(total, static_cast<long>(n) * (n - 1) / 2);
}

// Atomic read-modify-write across all indices: stresses the work-stealing
// counter under maximal contention (bodies that finish instantly).
TEST(ParallelStressTest, AtomicContentionVisitsEveryIndexOnce) {
  const size_t n = 50000;
  std::atomic<size_t> visited{0};
  std::vector<std::atomic<unsigned char>> seen(n);
  ParallelFor(n, [&](size_t i) {
    visited.fetch_add(1, std::memory_order_relaxed);
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(int{seen[i].load()}, 1) << "index " << i;
  }
}

// Nested ParallelFor: an outer parallel loop whose body runs its own inner
// loop. The inner call must neither deadlock nor race on the outer state.
TEST(ParallelStressTest, NestedCallsAreSafe) {
  const size_t outer = 16;
  const size_t inner = 64;
  std::vector<std::vector<double>> results(outer);
  ParallelFor(outer, [&](size_t o) {
    results[o].assign(inner, 0.0);
    ParallelFor(
        inner, [&, o](size_t i) {
          results[o][i] = static_cast<double>(o * 1000 + i);
        },
        2);
  });
  for (size_t o = 0; o < outer; ++o) {
    for (size_t i = 0; i < inner; ++i) {
      EXPECT_DOUBLE_EQ(results[o][i], static_cast<double>(o * 1000 + i));
    }
  }
}

// Exception contract: the first exception thrown by a body is rethrown on
// the calling thread after all workers joined (never std::terminate).
TEST(ParallelStressTest, ExceptionInBodyPropagatesToCaller) {
  const size_t n = 1000;
  EXPECT_THROW(
      ParallelFor(n,
                  [&](size_t i) {
                    if (i == 137) throw std::runtime_error("body failed");
                  },
                  8),
      std::runtime_error);
}

// After an exception, every worker must have joined: writes made by other
// indices before the cancellation are visible and unracy.
TEST(ParallelStressTest, WorkersJoinAfterException) {
  const size_t n = 2000;
  std::vector<std::atomic<int>> touched(n);
  std::string message;
  try {
    ParallelFor(n,
                [&](size_t i) {
                  touched[i].fetch_add(1, std::memory_order_relaxed);
                  if (i == 500) throw std::logic_error("halt");
                },
                4);
  } catch (const std::logic_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message, "halt");
  // Each index ran at most once; at least the throwing one ran.
  size_t ran = 0;
  for (size_t i = 0; i < n; ++i) {
    int count = touched[i].load();
    ASSERT_LE(count, 1) << "index " << i;
    ran += static_cast<size_t>(count);
  }
  EXPECT_GE(ran, 1u);
}

// Exceptions from several bodies at once: exactly one wins, the process
// survives, and the winner is one of the thrown values.
TEST(ParallelStressTest, ConcurrentExceptionsRethrowExactlyOne) {
  const size_t n = 4000;
  int value = -1;
  try {
    ParallelFor(n, [&](size_t i) { throw static_cast<int>(i); }, 8);
  } catch (int i) {
    value = i;
  }
  EXPECT_GE(value, 0);
  EXPECT_LT(value, static_cast<int>(n));
}

// Seeded determinism: the same per-index pure computation must produce
// bit-identical results across 1, 2, and 8 threads — the property every
// flighting/observation path in the repo depends on.
TEST(ParallelStressTest, DeterministicAcrossOneTwoEightThreads) {
  const size_t n = 4096;
  const uint64_t seed = 0xC0FFEE;
  auto run = [&](unsigned threads) {
    std::vector<double> out(n, 0.0);
    ParallelFor(
        n,
        [&](size_t i) {
          Rng rng(seed ^ (static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL));
          double acc = 0.0;
          for (int k = 0; k < 16; ++k) acc += rng.Uniform(0.0, 1.0);
          out[i] = acc;
        },
        threads);
    return out;
  };
  std::vector<double> one = run(1);
  std::vector<double> two = run(2);
  std::vector<double> eight = run(8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(one[i], two[i]) << "index " << i;
    ASSERT_EQ(one[i], eight[i]) << "index " << i;
  }
}

// Repeated small launches: thread creation/teardown churn is where lazy
// initialization races and counter reuse bugs hide.
TEST(ParallelStressTest, RepeatedLaunchesStayConsistent) {
  for (int round = 0; round < 200; ++round) {
    std::vector<int> out(17, 0);
    ParallelFor(out.size(), [&](size_t i) { out[i] = round; }, 3);
    for (int v : out) ASSERT_EQ(v, round);
  }
}

}  // namespace
}  // namespace tasq
