// Race-stress suite for the parallel core. Designed to run under
// ThreadSanitizer (scripts/check.sh tsan): every pattern here is one the
// later perf PRs will lean on, so a regression that introduces a data race
// or breaks the exception contract fails this binary before it ships.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "serve/server.h"
#include "serve/thread_pool.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

namespace tasq {
namespace {

// Shared-slot writes: the canonical usage pattern (each index owns slot i
// of a pre-sized vector). TSan must see no race between distinct slots or
// with the final read after join.
TEST(ParallelStressTest, SharedSlotWritesAreRaceFree) {
  const size_t n = 10000;
  std::vector<double> out(n, 0.0);
  ParallelFor(n, [&](size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * static_cast<double>(n) * (n - 1) / 2.0);
}

// A mutex-guarded shared accumulator must also be clean: the loop makes no
// assumptions about bodies being disjoint as long as they synchronize.
TEST(ParallelStressTest, MutexGuardedAccumulatorIsRaceFree) {
  const size_t n = 5000;
  std::mutex mutex;
  long total = 0;
  ParallelFor(n, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mutex);
    total += static_cast<long>(i);
  });
  EXPECT_EQ(total, static_cast<long>(n) * (n - 1) / 2);
}

// Atomic read-modify-write across all indices: stresses the work-stealing
// counter under maximal contention (bodies that finish instantly).
TEST(ParallelStressTest, AtomicContentionVisitsEveryIndexOnce) {
  const size_t n = 50000;
  std::atomic<size_t> visited{0};
  std::vector<std::atomic<unsigned char>> seen(n);
  ParallelFor(n, [&](size_t i) {
    visited.fetch_add(1, std::memory_order_relaxed);
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(visited.load(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(int{seen[i].load()}, 1) << "index " << i;
  }
}

// Nested ParallelFor: an outer parallel loop whose body runs its own inner
// loop. The inner call must neither deadlock nor race on the outer state.
TEST(ParallelStressTest, NestedCallsAreSafe) {
  const size_t outer = 16;
  const size_t inner = 64;
  std::vector<std::vector<double>> results(outer);
  ParallelFor(outer, [&](size_t o) {
    results[o].assign(inner, 0.0);
    ParallelFor(
        inner, [&, o](size_t i) {
          results[o][i] = static_cast<double>(o * 1000 + i);
        },
        2);
  });
  for (size_t o = 0; o < outer; ++o) {
    for (size_t i = 0; i < inner; ++i) {
      EXPECT_DOUBLE_EQ(results[o][i], static_cast<double>(o * 1000 + i));
    }
  }
}

// Exception contract: the first exception thrown by a body is rethrown on
// the calling thread after all workers joined (never std::terminate).
TEST(ParallelStressTest, ExceptionInBodyPropagatesToCaller) {
  const size_t n = 1000;
  EXPECT_THROW(
      ParallelFor(n,
                  [&](size_t i) {
                    if (i == 137) throw std::runtime_error("body failed");
                  },
                  8),
      std::runtime_error);
}

// After an exception, every worker must have joined: writes made by other
// indices before the cancellation are visible and unracy.
TEST(ParallelStressTest, WorkersJoinAfterException) {
  const size_t n = 2000;
  std::vector<std::atomic<int>> touched(n);
  std::string message;
  try {
    ParallelFor(n,
                [&](size_t i) {
                  touched[i].fetch_add(1, std::memory_order_relaxed);
                  if (i == 500) throw std::logic_error("halt");
                },
                4);
  } catch (const std::logic_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message, "halt");
  // Each index ran at most once; at least the throwing one ran.
  size_t ran = 0;
  for (size_t i = 0; i < n; ++i) {
    int count = touched[i].load();
    ASSERT_LE(count, 1) << "index " << i;
    ran += static_cast<size_t>(count);
  }
  EXPECT_GE(ran, 1u);
}

// Exceptions from several bodies at once: exactly one wins, the process
// survives, and the winner is one of the thrown values.
TEST(ParallelStressTest, ConcurrentExceptionsRethrowExactlyOne) {
  const size_t n = 4000;
  int value = -1;
  try {
    ParallelFor(n, [&](size_t i) { throw static_cast<int>(i); }, 8);
  } catch (int i) {
    value = i;
  }
  EXPECT_GE(value, 0);
  EXPECT_LT(value, static_cast<int>(n));
}

// Seeded determinism: the same per-index pure computation must produce
// bit-identical results across 1, 2, and 8 threads — the property every
// flighting/observation path in the repo depends on.
TEST(ParallelStressTest, DeterministicAcrossOneTwoEightThreads) {
  const size_t n = 4096;
  const uint64_t seed = 0xC0FFEE;
  auto run = [&](unsigned threads) {
    std::vector<double> out(n, 0.0);
    ParallelFor(
        n,
        [&](size_t i) {
          Rng rng(seed ^ (static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL));
          double acc = 0.0;
          for (int k = 0; k < 16; ++k) acc += rng.Uniform(0.0, 1.0);
          out[i] = acc;
        },
        threads);
    return out;
  };
  std::vector<double> one = run(1);
  std::vector<double> two = run(2);
  std::vector<double> eight = run(8);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(one[i], two[i]) << "index " << i;
    ASSERT_EQ(one[i], eight[i]) << "index " << i;
  }
}

// Repeated small launches: thread creation/teardown churn is where lazy
// initialization races and counter reuse bugs hide.
TEST(ParallelStressTest, RepeatedLaunchesStayConsistent) {
  for (int round = 0; round < 200; ++round) {
    std::vector<int> out(17, 0);
    ParallelFor(out.size(), [&](size_t i) { out[i] = round; }, 3);
    for (int v : out) ASSERT_EQ(v, round);
  }
}

// ---- Scoring one trained pipeline from many threads ----------------------
//
// The serving layer shares a single const Tasq across every worker without
// locks, relying on the thread-safety contract documented in tasq.h. These
// tests hammer that contract under TSan: any hidden mutable state in a
// scoring path (lazy caches, shared scratch buffers) shows up as a data
// race here before it can corrupt production scores.

class ParallelStressPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 17;
    generator_ = new WorkloadGenerator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto observed =
        ObserveWorkload(generator_->Generate(0, 80), noise, 1).value();
    // Smallest configuration that trains all four models: the tests below
    // probe concurrency, not accuracy, and this binary also runs under
    // TSan's ~20x slowdown.
    TasqOptions options;
    options.nn.epochs = 6;
    options.gnn.epochs = 1;
    options.gnn.gcn_hidden = {8};
    options.gnn.head_hidden = {8};
    options.xgb.gbdt.num_trees = 10;
    pipeline_ = new Tasq(options);
    ASSERT_TRUE(pipeline_->Train(observed).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete generator_;
    pipeline_ = nullptr;
    generator_ = nullptr;
  }

  static constexpr ModelKind kAllKinds[4] = {
      ModelKind::kXgboostSs, ModelKind::kXgboostPl, ModelKind::kNn,
      ModelKind::kGnn};

  static Tasq* pipeline_;
  static WorkloadGenerator* generator_;
};

Tasq* ParallelStressPipelineTest::pipeline_ = nullptr;
WorkloadGenerator* ParallelStressPipelineTest::generator_ = nullptr;
constexpr ModelKind ParallelStressPipelineTest::kAllKinds[4];

TEST_F(ParallelStressPipelineTest, EightThreadsScoreOnePipelineRaceFree) {
  std::vector<Job> jobs = generator_->Generate(200, 8);

  // Sequential ground truth, computed before any concurrency starts.
  std::vector<std::string> expected;
  for (const Job& job : jobs) {
    for (ModelKind kind : kAllKinds) {
      auto report = BuildWhatIfReport(*pipeline_, job.graph, kind,
                                      job.default_tokens, 9);
      ASSERT_TRUE(report.ok());
      expected.push_back(report.value().ToText());
    }
  }

  // 8 threads hammer every scoring entry point on the same pipeline.
  // Results must be bit-identical to the sequential pass — concurrency may
  // not perturb a single byte of any report.
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int round = 0; round < 3; ++round) {
        size_t slot = 0;
        for (const Job& job : jobs) {
          for (ModelKind kind : kAllKinds) {
            auto report = BuildWhatIfReport(*pipeline_, job.graph, kind,
                                            job.default_tokens, 9);
            if (!report.ok()) {
              errors.fetch_add(1);
            } else if (report.value().ToText() != expected[slot]) {
              mismatches.fetch_add(1);
            }
            ++slot;
            // Exercise the lower-level entry points too; their results are
            // covered by the report comparison, so only failures count.
            if (!pipeline_->PredictRuntime(job.graph, kind,
                                           job.default_tokens,
                                           job.default_tokens).ok()) {
              errors.fetch_add(1);
            }
            if (kind != ModelKind::kXgboostSs &&
                !pipeline_->PredictPcc(job.graph, kind,
                                       job.default_tokens).ok()) {
              errors.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ParallelStressPipelineTest, ServerStressFromEightProducers) {
  // A shared PccServer under producer contention: 8 threads submit a
  // recurring-heavy stream (cache hits and misses interleave with queue
  // backpressure) and every future must resolve to the sequential answer.
  std::vector<Job> jobs = generator_->Generate(300, 6);
  std::vector<std::string> expected;
  for (const Job& job : jobs) {
    auto report = BuildWhatIfReport(*pipeline_, job.graph, ModelKind::kNn,
                                    job.default_tokens, 9);
    ASSERT_TRUE(report.ok());
    expected.push_back(report.value().ToText());
  }

  PccServerOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8;
  options.max_batch = 4;
  options.cache_capacity = 4;  // Smaller than the job set: forces evictions.
  PccServer server(*pipeline_, options);

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 8; ++t) {
    producers.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int round = 0; round < 20; ++round) {
        size_t pick = static_cast<size_t>(
            rng.Uniform(0.0, static_cast<double>(jobs.size()) - 0.001));
        ScoreRequest request;
        request.graph = jobs[pick].graph;
        request.model = ModelKind::kNn;
        request.reference_tokens = jobs[pick].default_tokens;
        auto result = server.Score(std::move(request));
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (result.value().ToText() != expected[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  server.Shutdown();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 160u);
  EXPECT_LE(stats.max_queue_depth, options.queue_capacity);
}

// ThreadPool under producer/consumer contention: tasks submitted from many
// threads against a tiny bounded queue, with one graceful shutdown racing
// the tail of the stream.
TEST(ParallelStressTest, ThreadPoolContendedSubmitAndShutdown) {
  ThreadPool pool(4, 2);
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 8; ++t) {
    producers.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        if (!pool.Submit([&ran]() { ran.fetch_add(1); })) break;
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 8 * 50);
  EXPECT_FALSE(pool.Submit([]() {}));
}

}  // namespace
}  // namespace tasq
