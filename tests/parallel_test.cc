#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/parallel.h"
#include "selection/flighting.h"
#include "tasq/dataset.h"
#include "workload/generator.h"

namespace tasq {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  ParallelFor(n, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroAndSingleItem) {
  int calls = 0;
  ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ExplicitSingleThreadRunsInline) {
  std::vector<int> order;
  ParallelFor(
      5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  std::vector<int> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);  // Sequential when single-threaded.
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(3, [&](size_t i) { visits[i].fetch_add(1); }, 64);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelDeterminismTest, ObserveWorkloadMatchesSerialRun) {
  // The parallel observation must be bit-identical to itself across runs
  // (and therefore to the serial order, since each index is a pure
  // function of the job and seed).
  WorkloadGenerator generator(WorkloadConfig{});
  auto jobs = generator.Generate(0, 40);
  NoiseModel noise;
  noise.enabled = true;
  auto a = ObserveWorkload(jobs, noise, 5).value();
  auto b = ObserveWorkload(jobs, noise, 5).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job.id, b[i].job.id);
    EXPECT_DOUBLE_EQ(a[i].runtime_seconds, b[i].runtime_seconds);
    EXPECT_EQ(a[i].skyline, b[i].skyline);
  }
}

TEST(ParallelDeterminismTest, FlightJobsMatchesRepeatRun) {
  WorkloadGenerator generator(WorkloadConfig{});
  auto jobs = generator.Generate(100, 12);
  FlightHarness harness(FlightConfig{});
  auto a = harness.FlightJobs(jobs);
  auto b = harness.FlightJobs(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_id, b[i].job_id);
    ASSERT_EQ(a[i].flights.size(), b[i].flights.size());
    for (size_t f = 0; f < a[i].flights.size(); ++f) {
      EXPECT_DOUBLE_EQ(a[i].flights[f].runtime_seconds,
                       b[i].flights[f].runtime_seconds);
    }
  }
}

}  // namespace
}  // namespace tasq
