#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "pcc/pcc.h"

namespace tasq {
namespace {

TEST(PowerLawPccTest, EvalMatchesFormula) {
  PowerLawPcc pcc{-0.5, 1000.0};
  EXPECT_NEAR(pcc.EvalRunTime(4.0), 500.0, 1e-9);
  EXPECT_NEAR(pcc.EvalRunTime(1.0), 1000.0, 1e-9);
}

TEST(PowerLawPccTest, MonotonicityBySignConsistency) {
  EXPECT_TRUE((PowerLawPcc{-0.5, 100.0}).IsMonotoneNonIncreasing());
  EXPECT_FALSE((PowerLawPcc{0.5, 100.0}).IsMonotoneNonIncreasing());
  EXPECT_TRUE((PowerLawPcc{0.0, 100.0}).IsMonotoneNonIncreasing());
  // Same (negative) signs means increasing.
  EXPECT_FALSE((PowerLawPcc{-0.5, -100.0}).IsMonotoneNonIncreasing());
}

TEST(PowerLawPccTest, OptimalTokensFromRelativeSlope) {
  // Relative improvement per token is |a| / A; with a = -0.5 and p = 1%
  // the threshold sits at A = 50.
  PowerLawPcc pcc{-0.5, 1000.0};
  EXPECT_NEAR(pcc.OptimalTokens(1.0, 200.0), 50.0, 1e-9);
  // Clamped by the available range.
  EXPECT_NEAR(pcc.OptimalTokens(1.0, 30.0), 30.0, 1e-9);
  EXPECT_NEAR(pcc.OptimalTokens(100.0, 200.0), 1.0, 1e-9);
}

TEST(PowerLawPccTest, MinTokensForSlowdownBoundsRuntime) {
  PowerLawPcc pcc{-0.5, 1000.0};
  double reference = 100.0;
  for (double bound : {0.0, 0.05, 0.25, 1.0}) {
    double tokens = pcc.MinTokensForSlowdown(reference, bound);
    EXPECT_GE(tokens, 1.0);
    EXPECT_LE(tokens, reference);
    double slowdown =
        pcc.EvalRunTime(tokens) / pcc.EvalRunTime(reference) - 1.0;
    EXPECT_LE(slowdown, bound + 1e-9) << "bound=" << bound;
    // The bound is tight for interior solutions: one token less violates.
    if (tokens > 1.0 + 1e-9 && tokens < reference - 1e-9) {
      double less =
          pcc.EvalRunTime(tokens - 1.0) / pcc.EvalRunTime(reference) - 1.0;
      EXPECT_GT(less, bound - 1e-9);
    }
  }
  // Zero slowdown allowed: must stay at the reference for a strictly
  // decreasing curve.
  EXPECT_DOUBLE_EQ(pcc.MinTokensForSlowdown(reference, 0.0), reference);
  // Flat curve: any allocation is fine.
  EXPECT_DOUBLE_EQ((PowerLawPcc{0.0, 100.0}).MinTokensForSlowdown(50.0, 0.1),
                   1.0);
  // Non-monotone curve: refuse to reduce.
  EXPECT_DOUBLE_EQ((PowerLawPcc{0.5, 100.0}).MinTokensForSlowdown(50.0, 0.1),
                   50.0);
}

TEST(PowerLawPccTest, OptimalTokensNonMonotoneReturnsMax) {
  PowerLawPcc increasing{0.5, 1000.0};
  EXPECT_DOUBLE_EQ(increasing.OptimalTokens(1.0, 128.0), 128.0);
}

TEST(PowerLawPccTest, OptimalMarginalGainBracketsThreshold) {
  // At the returned allocation, the marginal improvement of one more token
  // is just below p%, and one token less improves by more than p%.
  PowerLawPcc pcc{-0.8, 2000.0};
  double a_star = pcc.OptimalTokens(2.0, 1000.0);
  double here = pcc.EvalRunTime(a_star);
  double more = pcc.EvalRunTime(a_star + 1.0);
  double less = pcc.EvalRunTime(a_star - 1.0);
  EXPECT_LT((here - more) / here, 0.02);
  EXPECT_GT((less - here) / less, 0.02 * 0.9);
}

TEST(FitPowerLawTest, RecoversKnownParameters) {
  PowerLawPcc truth{-0.7, 1234.0};
  std::vector<PccSample> samples;
  for (double tokens = 5.0; tokens <= 100.0; tokens += 5.0) {
    samples.push_back({tokens, truth.EvalRunTime(tokens)});
  }
  Result<PowerLawFit> fit = FitPowerLaw(samples);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().pcc.a, -0.7, 1e-9);
  EXPECT_NEAR(fit.value().pcc.b, 1234.0, 1e-6);
  EXPECT_NEAR(fit.value().log_log_r2, 1.0, 1e-12);
}

TEST(FitPowerLawTest, RobustToNoise) {
  PowerLawPcc truth{-0.5, 600.0};
  Rng rng(3);
  std::vector<PccSample> samples;
  for (double tokens = 4.0; tokens <= 120.0; tokens += 4.0) {
    samples.push_back(
        {tokens, truth.EvalRunTime(tokens) * rng.LogNormal(0.0, 0.05)});
  }
  Result<PowerLawFit> fit = FitPowerLaw(samples);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().pcc.a, -0.5, 0.05);
  EXPECT_GT(fit.value().log_log_r2, 0.95);
}

TEST(FitPowerLawTest, RejectsDegenerateSamples) {
  EXPECT_FALSE(FitPowerLaw({}).ok());
  EXPECT_FALSE(FitPowerLaw({{10.0, 100.0}}).ok());
  // Same token value twice: no slope.
  EXPECT_FALSE(FitPowerLaw({{10.0, 100.0}, {10.0, 90.0}}).ok());
  // Non-positive values are skipped.
  EXPECT_FALSE(FitPowerLaw({{-10.0, 100.0}, {0.0, 90.0}, {5.0, 0.0}}).ok());
}

TEST(FitPowerLawTest, IgnoresNonFiniteAndNonPositiveSamples) {
  // A clean power law with degenerate observations interleaved: the fit
  // must equal the fit on the clean subset exactly, because the bad rows
  // never enter the log-log regression.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  PowerLawPcc truth{-0.6, 500.0};
  std::vector<PccSample> clean;
  for (double tokens = 2.0; tokens <= 64.0; tokens *= 2.0) {
    clean.push_back({tokens, truth.EvalRunTime(tokens)});
  }
  std::vector<PccSample> dirty = clean;
  dirty.insert(dirty.begin(), {kNan, 100.0});
  dirty.insert(dirty.begin() + 3, {10.0, kNan});
  dirty.push_back({kInf, 50.0});
  dirty.push_back({12.0, -3.0});
  dirty.push_back({0.0, 40.0});
  Result<PowerLawFit> clean_fit = FitPowerLaw(clean);
  Result<PowerLawFit> dirty_fit = FitPowerLaw(dirty);
  ASSERT_TRUE(clean_fit.ok());
  ASSERT_TRUE(dirty_fit.ok());
  EXPECT_DOUBLE_EQ(dirty_fit.value().pcc.a, clean_fit.value().pcc.a);
  EXPECT_DOUBLE_EQ(dirty_fit.value().pcc.b, clean_fit.value().pcc.b);
  EXPECT_DOUBLE_EQ(dirty_fit.value().log_log_r2,
                   clean_fit.value().log_log_r2);
}

TEST(FitPowerLawTest, AllNonFiniteSamplesIsTypedErrorNotCrash) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  Result<PowerLawFit> fit = FitPowerLaw(
      {{kNan, 1.0}, {1.0, kNan}, {kInf, 2.0}, {3.0, -kInf}});
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.status().code(), StatusCode::kInvalidArgument);
}

TEST(MonotoneCheckTest, DetectsIncreaseBeyondTolerance) {
  std::vector<PccSample> increasing = {{10.0, 100.0}, {20.0, 115.0}};
  EXPECT_FALSE(IsCurveMonotoneNonIncreasing(increasing));
  EXPECT_FALSE(IsCurveMonotoneNonIncreasing(increasing, 10.0));
  EXPECT_TRUE(IsCurveMonotoneNonIncreasing(increasing, 20.0));
}

TEST(MonotoneCheckTest, SortsByTokensFirst) {
  // Unsorted but monotone non-increasing in tokens.
  std::vector<PccSample> samples = {{30.0, 50.0}, {10.0, 100.0}, {20.0, 70.0}};
  EXPECT_TRUE(IsCurveMonotoneNonIncreasing(samples));
}

TEST(FilterAroundReferenceTest, KeepsWindow) {
  std::vector<PccSample> samples;
  for (double t = 10.0; t <= 200.0; t += 10.0) samples.push_back({t, 1.0});
  auto filtered = FilterAroundReference(samples, 100.0, 0.4);
  ASSERT_FALSE(filtered.empty());
  for (const auto& s : filtered) {
    EXPECT_GE(s.tokens, 60.0);
    EXPECT_LE(s.tokens, 140.0);
  }
  EXPECT_EQ(filtered.size(), 9u);  // 60..140 step 10.
}

TEST(OptimalTokensFromSamplesTest, AgreesWithParametricAnswer) {
  // On a densely sampled power law, the discrete walk lands near the
  // closed-form threshold A* = |a| * 100 / p.
  PowerLawPcc pcc{-0.5, 2000.0};
  std::vector<PccSample> samples;
  for (double tokens = 1.0; tokens <= 200.0; tokens += 1.0) {
    samples.push_back({tokens, pcc.EvalRunTime(tokens)});
  }
  Result<double> tokens = OptimalTokensFromSamples(samples, 1.0);
  ASSERT_TRUE(tokens.ok());
  EXPECT_NEAR(tokens.value(), pcc.OptimalTokens(1.0, 200.0), 2.0);
}

TEST(OptimalTokensFromSamplesTest, FlatCurveWalksToMinimum) {
  std::vector<PccSample> samples = {
      {10.0, 100.0}, {20.0, 100.0}, {40.0, 100.0}};
  Result<double> tokens = OptimalTokensFromSamples(samples, 1.0);
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value(), 10.0);
}

TEST(OptimalTokensFromSamplesTest, SteepCurveStaysAtMaximum) {
  // Dropping from 40 to 20 tokens doubles run time: far above any sane
  // threshold, so the walk stays at the top.
  std::vector<PccSample> samples = {
      {20.0, 200.0}, {40.0, 100.0}};
  Result<double> tokens = OptimalTokensFromSamples(samples, 1.0);
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value(), 40.0);
}

TEST(OptimalTokensFromSamplesTest, NonMonotoneSegmentStopsWalk) {
  // Runtime *improves* with fewer tokens between 20 and 30 — noise; the
  // walk refuses to descend past it.
  std::vector<PccSample> samples = {
      {10.0, 100.5}, {20.0, 90.0}, {30.0, 100.0}, {40.0, 99.9}};
  Result<double> tokens = OptimalTokensFromSamples(samples, 1.0);
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value(), 30.0);
}

TEST(OptimalTokensFromSamplesTest, ValidatesInput) {
  EXPECT_FALSE(OptimalTokensFromSamples({}, 1.0).ok());
  EXPECT_FALSE(OptimalTokensFromSamples({{10.0, 1.0}}, 1.0).ok());
  EXPECT_FALSE(
      OptimalTokensFromSamples({{10.0, 1.0}, {20.0, 1.0}}, 0.0).ok());
  // Non-positive samples are discarded.
  EXPECT_FALSE(
      OptimalTokensFromSamples({{-1.0, 5.0}, {10.0, 0.0}}, 1.0).ok());
}

TEST(OptimalTokensFromSamplesTest, IgnoresNonFiniteSamples) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  // The finite subset is a flat curve whose walk ends at 10 tokens; the
  // NaN/inf rows must not perturb the answer or crash the walk.
  std::vector<PccSample> samples = {
      {kNan, 100.0}, {10.0, 100.0}, {15.0, kInf},
      {20.0, 100.0}, {kInf, 1.0},   {40.0, 100.0}};
  Result<double> tokens = OptimalTokensFromSamples(samples, 1.0);
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value(), 10.0);
  // All rows degenerate: typed error, not a crash.
  EXPECT_FALSE(
      OptimalTokensFromSamples({{kNan, 1.0}, {2.0, kNan}}, 1.0).ok());
}

TEST(FindElbowTest, LocatesKneeOfConvexCurve) {
  PowerLawPcc pcc{-1.0, 2000.0};
  std::vector<PccSample> samples;
  for (double t = 5.0; t <= 200.0; t += 5.0) {
    samples.push_back({t, pcc.EvalRunTime(t)});
  }
  Result<double> elbow = FindElbowTokens(samples);
  ASSERT_TRUE(elbow.ok());
  // The knee of 1/x over [5, 200] sits well inside the range.
  EXPECT_GT(elbow.value(), 10.0);
  EXPECT_LT(elbow.value(), 80.0);
}

TEST(FindElbowTest, RejectsDegenerateCurves) {
  EXPECT_FALSE(FindElbowTokens({{1.0, 5.0}, {2.0, 4.0}}).ok());
  // Flat curve: no runtime range.
  EXPECT_FALSE(
      FindElbowTokens({{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}}).ok());
  // Concave-up in the wrong direction (linear): no strict elbow.
  EXPECT_FALSE(
      FindElbowTokens({{1.0, 30.0}, {2.0, 20.0}, {3.0, 10.0}}).ok());
}

TEST(SmoothingSplineTest, LambdaZeroInterpolates) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {5.0, 1.0, 4.0, 2.0};
  Result<SmoothingSpline> spline = SmoothingSpline::Fit(x, y, 0.0);
  ASSERT_TRUE(spline.ok());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(spline.value().Eval(x[i]), y[i], 1e-9);
  }
}

TEST(SmoothingSplineTest, LargeLambdaApproachesLeastSquaresLine) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> y = {2.1, 3.9, 6.2, 7.8, 10.1};  // Roughly 2x.
  Result<SmoothingSpline> spline = SmoothingSpline::Fit(x, y, 1e9);
  ASSERT_TRUE(spline.ok());
  // The limit is the least-squares line through the data.
  for (double t = 1.0; t <= 5.0; t += 0.5) {
    EXPECT_NEAR(spline.value().Eval(t), 0.02 + 2.0 * t, 0.15);
  }
}

TEST(SmoothingSplineTest, SmoothsNoiseTowardTrend) {
  // Averaged over noise realizations, a small-lambda spline must sit closer
  // to the true 100/t curve than the noisy samples themselves.
  double mse_smooth = 0.0;
  double mse_raw = 0.0;
  int count = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<double> x;
    std::vector<double> y;
    for (double t = 1.0; t <= 30.0; t += 1.0) {
      x.push_back(t);
      y.push_back(100.0 / t + rng.Normal(0.0, 3.0));
    }
    Result<SmoothingSpline> spline = SmoothingSpline::Fit(x, y, 0.05);
    ASSERT_TRUE(spline.ok());
    for (size_t i = 0; i < x.size(); ++i) {
      double truth = 100.0 / x[i];
      double err = spline.value().Eval(x[i]) - truth;
      mse_smooth += err * err;
      mse_raw += (y[i] - truth) * (y[i] - truth);
      ++count;
    }
  }
  EXPECT_LT(mse_smooth / count, mse_raw / count);
}

TEST(SmoothingSplineTest, LinearExtrapolationOutsideRange) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {2.0, 4.0, 6.0};
  Result<SmoothingSpline> spline = SmoothingSpline::Fit(x, y, 0.0);
  ASSERT_TRUE(spline.ok());
  EXPECT_NEAR(spline.value().Eval(0.0), 0.0, 1e-9);
  EXPECT_NEAR(spline.value().Eval(5.0), 10.0, 1e-9);
}

TEST(SmoothingSplineTest, RejectsBadInput) {
  EXPECT_FALSE(SmoothingSpline::Fit({1.0, 2.0}, {1.0, 2.0}, 0.0).ok());
  EXPECT_FALSE(
      SmoothingSpline::Fit({1.0, 1.0, 2.0}, {1.0, 2.0, 3.0}, 0.0).ok());
  EXPECT_FALSE(
      SmoothingSpline::Fit({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, -1.0).ok());
  EXPECT_FALSE(SmoothingSpline::Fit({1.0, 2.0, 3.0}, {1.0, 2.0}, 0.0).ok());
}

}  // namespace
}  // namespace tasq
