// Policy-generic property battery over the allocation arbiter: every
// policy (FIFO gang, welfare-max, max-min fair, Karma) must satisfy the
// fairness-independent invariants — conservation (held tokens never
// exceed the pool at any instant), no starvation (every job eventually
// starts), pool monotonicity (a bigger pool never increases any job's
// wait), Karma credit conservation (the credit ledger is zero-sum), and
// byte-identical determinism across same-seed runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "arbiter/allocation_arbiter.h"
#include "common/rng.h"
#include "simcluster/cluster_scheduler.h"
#include "workload/generator.h"

namespace tasq {
namespace {

constexpr int kNumTenants = 6;

struct BatteryCase {
  ArbiterPolicy policy;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<BatteryCase>& info) {
  return std::string(ArbiterPolicyName(info.param.policy)) + "_seed" +
         std::to_string(info.param.seed);
}

/// A bursty multi-tenant trace: the regime where arbitration decisions
/// actually differ (an idle pool admits everything immediately).
std::vector<Submission> MakeTrace(uint64_t seed, int64_t num_jobs,
                                  double cluster_tokens) {
  WorkloadConfig config;
  config.seed = seed;
  WorkloadGenerator generator(config);
  auto jobs = generator.Generate(static_cast<int64_t>(seed) * 1000, num_jobs);
  Rng rng(seed * 7919 + 1);
  std::vector<Submission> submissions;
  double burst_start = 0.0;
  size_t i = 0;
  while (i < jobs.size()) {
    burst_start += rng.LogNormal(std::log(60.0), 0.7);
    int64_t burst = rng.UniformInt(2, 6);
    for (int64_t k = 0; k < burst && i < jobs.size(); ++k, ++i) {
      Submission submission;
      submission.job_id = jobs[i].id;
      submission.tenant_id = static_cast<int64_t>(i % kNumTenants);
      submission.arrival_seconds = burst_start + rng.Uniform(0.0, 3.0);
      submission.requested_tokens =
          std::min(cluster_tokens, std::max(1.0, jobs[i].default_tokens));
      submission.plan = jobs[i].plan;
      submissions.push_back(std::move(submission));
    }
  }
  return submissions;
}

std::vector<ScheduledJob> RunPolicy(const std::vector<Submission>& submissions,
                                    ArbiterPolicy policy,
                                    double cluster_tokens,
                                    std::unique_ptr<PolicyArbiter>* out =
                                        nullptr) {
  ArbiterOptions options;
  options.policy = policy;
  auto arbiter = MakeArbiter(options, BeliefsFromPlans(submissions));
  ClusterScheduler scheduler(SchedulerConfig{cluster_tokens, false, {}, 11});
  auto trace = scheduler.Run(submissions, arbiter.get());
  EXPECT_TRUE(trace.ok());
  if (out != nullptr) *out = std::move(arbiter);
  return trace.ok() ? trace.value() : std::vector<ScheduledJob>{};
}

class ArbiterPropertyTest : public ::testing::TestWithParam<BatteryCase> {};

TEST_P(ArbiterPropertyTest, ConservationHeldNeverExceedsPool) {
  const double pool = 400.0;
  auto submissions = MakeTrace(GetParam().seed, 60, pool);
  auto trace = RunPolicy(submissions, GetParam().policy, pool);
  ASSERT_EQ(trace.size(), submissions.size());
  // Sweep the trace's acquire/release events in time order; at any
  // instant the held tokens must fit the pool. Releases sort before
  // acquisitions at the same time stamp (the scheduler frees completed
  // grants before admitting into the same event).
  struct Event {
    double time;
    double delta;  // Positive acquires, negative releases.
  };
  std::vector<Event> events;
  for (const ScheduledJob& job : trace) {
    events.push_back(Event{job.start_seconds, job.granted_tokens});
    events.push_back(Event{job.finish_seconds, -job.granted_tokens});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.delta < b.delta;
                   });
  double held = 0.0;
  for (const Event& event : events) {
    held += event.delta;
    EXPECT_LE(held, pool + 1e-6);
    EXPECT_GE(held, -1e-6);
  }
}

TEST_P(ArbiterPropertyTest, NoStarvationEveryJobRuns) {
  const double pool = 300.0;
  auto submissions = MakeTrace(GetParam().seed, 50, pool);
  auto trace = RunPolicy(submissions, GetParam().policy, pool);
  ASSERT_EQ(trace.size(), submissions.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const ScheduledJob& job = trace[i];
    EXPECT_EQ(job.job_id, submissions[i].job_id);
    EXPECT_GE(job.start_seconds, job.arrival_seconds);
    EXPECT_GE(job.finish_seconds, job.start_seconds);
    EXPECT_GE(job.granted_tokens, 1.0 - 1e-9);
    EXPECT_LE(job.granted_tokens, submissions[i].requested_tokens + 1e-9);
  }
}

TEST_P(ArbiterPropertyTest, PoolMonotonicityMoreTokensNeverHurt) {
  auto submissions = MakeTrace(GetParam().seed, 40, 300.0);
  auto small_pool = RunPolicy(submissions, GetParam().policy, 300.0);
  auto large_pool = RunPolicy(submissions, GetParam().policy, 600.0);
  ASSERT_EQ(small_pool.size(), large_pool.size());
  // Doubling the pool must not increase the trace's mean wait under any
  // policy. Per-job monotonicity additionally holds for the gang
  // baseline; the partial-grant policies are subject to Graham-style
  // scheduling anomalies (a bigger pool changes grant sizes, which can
  // reorder individual completions), so per-job it is deliberately not
  // asserted for them — see DESIGN.md "Cluster arbiter".
  TraceSummary small_summary = SummarizeTrace(small_pool, 300.0);
  TraceSummary large_summary = SummarizeTrace(large_pool, 600.0);
  EXPECT_LE(large_summary.mean_wait_seconds,
            small_summary.mean_wait_seconds + 1e-6);
  if (GetParam().policy == ArbiterPolicy::kFifoGang) {
    for (size_t i = 0; i < small_pool.size(); ++i) {
      EXPECT_LE(large_pool[i].wait_seconds(),
                small_pool[i].wait_seconds() + 1e-6)
          << "job " << small_pool[i].job_id << " waits longer with 2x pool";
    }
  }
}

TEST_P(ArbiterPropertyTest, DeterminismByteIdenticalReruns) {
  const double pool = 350.0;
  auto submissions = MakeTrace(GetParam().seed, 50, pool);
  auto first = RunPolicy(submissions, GetParam().policy, pool);
  auto second = RunPolicy(submissions, GetParam().policy, pool);
  EXPECT_EQ(FormatTrace(first), FormatTrace(second));
}

TEST_P(ArbiterPropertyTest, KarmaCreditLedgerIsZeroSum) {
  if (GetParam().policy != ArbiterPolicy::kKarma) {
    GTEST_SKIP() << "credit ledger applies to kKarma only";
  }
  const double pool = 300.0;
  auto submissions = MakeTrace(GetParam().seed, 50, pool);
  std::unique_ptr<PolicyArbiter> arbiter;
  auto trace = RunPolicy(submissions, GetParam().policy, pool, &arbiter);
  ASSERT_EQ(trace.size(), submissions.size());
  ASSERT_NE(arbiter, nullptr);
  const auto& credits = arbiter->tenant_credits();
  ASSERT_FALSE(credits.empty());
  double initial_sum = arbiter->options().karma_initial_credits *
                       static_cast<double>(credits.size());
  double sum = 0.0;
  for (const auto& [tenant, balance] : credits) {
    // Debt stays within the configured bound for every account.
    EXPECT_GE(balance, -arbiter->options().karma_max_debt - 1e-6);
    sum += balance;
    (void)tenant;
  }
  // Bursts move credits between accounts but never create or destroy
  // them: the total equals the initial endowment.
  EXPECT_NEAR(sum, initial_sum, 1e-6 * std::max(1.0, initial_sum));
}

std::vector<BatteryCase> AllCases() {
  std::vector<BatteryCase> cases;
  for (int p = 0; p < kArbiterPolicyCount; ++p) {
    for (uint64_t seed : {3u, 17u}) {
      cases.push_back(BatteryCase{static_cast<ArbiterPolicy>(p), seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Policies, ArbiterPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace tasq
