// Property-based tests of AREPAS invariants over randomized skylines and
// allocations (parameterized over seeds).

#include <gtest/gtest.h>

#include <cmath>

#include "arepas/arepas.h"
#include "common/rng.h"

namespace tasq {
namespace {

Skyline RandomSkyline(Rng& rng) {
  size_t length = static_cast<size_t>(rng.UniformInt(1, 120));
  std::vector<double> usage(length);
  double peak = static_cast<double>(rng.UniformInt(1, 80));
  for (double& v : usage) {
    // Mix of valleys and bursts.
    v = rng.Bernoulli(0.3) ? peak * rng.Uniform(0.6, 1.0)
                           : peak * rng.Uniform(0.0, 0.3);
    v = std::floor(v);
  }
  // Ensure at least one nonzero tick so the skyline is a real execution.
  usage[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(length) - 1))] =
      peak;
  return Skyline(usage);
}

class ArepasPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArepasPropertyTest, AreaIsPreservedExactly) {
  Rng rng(GetParam());
  Arepas arepas;
  for (int trial = 0; trial < 25; ++trial) {
    Skyline original = RandomSkyline(rng);
    double allocation = rng.Uniform(1.0, original.Peak() + 5.0);
    Result<Skyline> simulated = arepas.SimulateSkyline(original, allocation);
    ASSERT_TRUE(simulated.ok());
    EXPECT_NEAR(simulated.value().Area(), original.Area(),
                1e-7 * std::max(1.0, original.Area()));
  }
}

TEST_P(ArepasPropertyTest, SimulatedUsageNeverExceedsAllocation) {
  Rng rng(GetParam() ^ 0x1);
  Arepas arepas;
  for (int trial = 0; trial < 25; ++trial) {
    Skyline original = RandomSkyline(rng);
    double allocation = rng.Uniform(1.0, original.Peak());
    Result<Skyline> simulated = arepas.SimulateSkyline(original, allocation);
    ASSERT_TRUE(simulated.ok());
    for (double v : simulated.value().values()) {
      EXPECT_LE(v, allocation + 1e-9);
    }
  }
}

TEST_P(ArepasPropertyTest, SimulationIsIdempotent) {
  // Once a skyline fits under the allocation, re-simulating at the same
  // allocation must not change it.
  Rng rng(GetParam() ^ 0x2);
  Arepas arepas;
  for (int trial = 0; trial < 25; ++trial) {
    Skyline original = RandomSkyline(rng);
    double allocation = rng.Uniform(1.0, original.Peak() + 2.0);
    Result<Skyline> once = arepas.SimulateSkyline(original, allocation);
    ASSERT_TRUE(once.ok());
    Result<Skyline> twice =
        arepas.SimulateSkyline(once.value(), allocation);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(once.value(), twice.value());
  }
}

TEST_P(ArepasPropertyTest, RunTimeBounds) {
  // The simulated duration is at least the perfect-packing bound
  // area/allocation and at least as long as the original when the
  // allocation is below the peak.
  Rng rng(GetParam() ^ 0x3);
  Arepas arepas;
  for (int trial = 0; trial < 25; ++trial) {
    Skyline original = RandomSkyline(rng);
    double allocation = rng.Uniform(1.0, original.Peak() + 2.0);
    Result<Skyline> simulated = arepas.SimulateSkyline(original, allocation);
    ASSERT_TRUE(simulated.ok());
    double duration =
        static_cast<double>(simulated.value().duration_seconds());
    EXPECT_GE(duration + 1e-9, original.Area() / allocation);
    EXPECT_GE(duration, static_cast<double>(
                            original.duration_seconds()) -
                            1e-9);
  }
}

TEST_P(ArepasPropertyTest, RoundingModesOrderDurations) {
  // floor <= exact <= ceil tick counts, and floor/ceil differ by at most
  // one tick per over-section.
  Rng rng(GetParam() ^ 0x4);
  for (int trial = 0; trial < 25; ++trial) {
    Skyline original = RandomSkyline(rng);
    double allocation = rng.Uniform(1.0, original.Peak());
    Arepas exact{ArepasOptions{AreaRounding::kExact}};
    Arepas floor_mode{ArepasOptions{AreaRounding::kFloor}};
    Arepas ceil_mode{ArepasOptions{AreaRounding::kCeil}};
    double d_exact =
        exact.SimulateRunTimeSeconds(original, allocation).value_or(-1);
    double d_floor =
        floor_mode.SimulateRunTimeSeconds(original, allocation).value_or(-1);
    double d_ceil =
        ceil_mode.SimulateRunTimeSeconds(original, allocation).value_or(-1);
    ASSERT_GE(d_exact, 0.0);
    EXPECT_LE(d_floor, d_exact + 1e-9);
    EXPECT_LE(d_exact, d_ceil + 1e-9);
    size_t over_sections = 0;
    for (const auto& sec : SplitSections(original, allocation)) {
      if (sec.over_threshold) ++over_sections;
    }
    EXPECT_LE(d_ceil - d_floor, static_cast<double>(over_sections) + 1e-9);
  }
}

TEST_P(ArepasPropertyTest, PccSamplingMatchesDirectSimulation) {
  Rng rng(GetParam() ^ 0x5);
  Arepas arepas;
  for (int trial = 0; trial < 10; ++trial) {
    Skyline original = RandomSkyline(rng);
    auto grid = LinearTokenGrid(1.0, original.Peak(), 6);
    if (grid.empty()) continue;
    auto samples = SamplePcc(original, grid);
    ASSERT_TRUE(samples.ok());
    for (const PccSample& s : samples.value()) {
      EXPECT_DOUBLE_EQ(
          s.runtime_seconds,
          arepas.SimulateRunTimeSeconds(original, s.tokens).value_or(-1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArepasPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tasq
