// Property-based tests of the gradient-boosted tree regressor across seeds
// and objectives.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "gbdt/gbdt.h"

namespace tasq {
namespace {

struct DataSet {
  std::vector<double> features;
  std::vector<double> targets;
  size_t rows = 0;
  size_t dim = 3;
};

DataSet MakeData(size_t n, uint64_t seed, bool positive_targets) {
  DataSet data;
  data.rows = n;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng.Uniform(0.0, 1.0);
    double x1 = rng.Uniform(0.0, 1.0);
    double x2 = rng.Uniform(0.0, 1.0);
    data.features.insert(data.features.end(), {x0, x1, x2});
    double y = 2.0 * x0 - x1 + 0.5 * std::sin(6.0 * x2);
    data.targets.push_back(positive_targets ? std::exp(y) : y);
  }
  return data;
}

class GbdtPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GbdtPropertyTest, PredictionsFiniteAndBoundedByTargetRange) {
  for (auto objective : {GbdtOptions::Objective::kSquaredError,
                         GbdtOptions::Objective::kGamma}) {
    bool positive = objective == GbdtOptions::Objective::kGamma;
    DataSet data = MakeData(500, GetParam(), positive);
    GbdtOptions options;
    options.objective = objective;
    options.num_trees = 40;
    options.seed = GetParam();
    GbdtRegressor model(options);
    ASSERT_TRUE(model.Train(data.features, data.rows, data.dim, data.targets)
                    .ok());
    double lo = *std::min_element(data.targets.begin(), data.targets.end());
    double hi = *std::max_element(data.targets.begin(), data.targets.end());
    double margin = (hi - lo) * 0.5 + 1e-6;
    Rng rng(GetParam() ^ 0xF00);
    for (int i = 0; i < 100; ++i) {
      std::vector<double> row = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0),
                                 rng.Uniform(0.0, 1.0)};
      double p = model.Predict(row);
      EXPECT_TRUE(std::isfinite(p));
      // Trees average training targets, so predictions stay near range.
      EXPECT_GT(p, lo - margin);
      EXPECT_LT(p, hi + margin);
      if (positive) {
        EXPECT_GT(p, 0.0);
      }
    }
  }
}

TEST_P(GbdtPropertyTest, MoreTreesNeverHurtTrainingFit) {
  DataSet data = MakeData(400, GetParam(), false);
  GbdtOptions options;
  options.objective = GbdtOptions::Objective::kSquaredError;
  options.subsample = 1.0;  // Deterministic boosting path.
  options.seed = GetParam();
  double previous_mse = 1e300;
  for (int trees : {5, 20, 80}) {
    options.num_trees = trees;
    GbdtRegressor model(options);
    ASSERT_TRUE(model.Train(data.features, data.rows, data.dim, data.targets)
                    .ok());
    double mse = 0.0;
    for (size_t i = 0; i < data.rows; ++i) {
      double err =
          model.Predict(&data.features[i * data.dim]) - data.targets[i];
      mse += err * err;
    }
    mse /= static_cast<double>(data.rows);
    EXPECT_LE(mse, previous_mse + 1e-9) << "trees=" << trees;
    previous_mse = mse;
  }
}

TEST_P(GbdtPropertyTest, TrainingFitBeatsConstantBaseline) {
  DataSet data = MakeData(400, GetParam(), true);
  GbdtOptions options;
  options.num_trees = 60;
  options.seed = GetParam();
  GbdtRegressor model(options);
  ASSERT_TRUE(
      model.Train(data.features, data.rows, data.dim, data.targets).ok());
  std::vector<double> predictions;
  for (size_t i = 0; i < data.rows; ++i) {
    predictions.push_back(model.Predict(&data.features[i * data.dim]));
  }
  double model_err = MeanAbsoluteError(predictions, data.targets);
  std::vector<double> constant(data.rows, Mean(data.targets));
  double baseline_err = MeanAbsoluteError(constant, data.targets);
  EXPECT_LT(model_err, baseline_err * 0.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbdtPropertyTest,
                         ::testing::Values(3, 17, 59, 211));

}  // namespace
}  // namespace tasq
