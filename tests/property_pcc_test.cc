// Property-based tests of PCC fitting, optimal-token search, and the
// sign-constrained target scaling (parameterized over seeds).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/pcc_loss.h"
#include "pcc/pcc.h"

namespace tasq {
namespace {

class PccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

PowerLawPcc RandomMonotonePcc(Rng& rng) {
  return PowerLawPcc{-rng.Uniform(0.05, 1.2),
                     std::exp(rng.Uniform(2.0, 12.0))};
}

TEST_P(PccPropertyTest, FitRecoversExactCurves) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    PowerLawPcc truth = RandomMonotonePcc(rng);
    std::vector<PccSample> samples;
    double lo = rng.Uniform(1.0, 10.0);
    for (double tokens = lo; samples.size() < 8; tokens *= 1.7) {
      samples.push_back({tokens, truth.EvalRunTime(tokens)});
    }
    Result<PowerLawFit> fit = FitPowerLaw(samples);
    ASSERT_TRUE(fit.ok());
    EXPECT_NEAR(fit.value().pcc.a, truth.a, 1e-8);
    EXPECT_NEAR(fit.value().pcc.b / truth.b, 1.0, 1e-8);
    EXPECT_NEAR(fit.value().log_log_r2, 1.0, 1e-10);
  }
}

TEST_P(PccPropertyTest, OptimalTokensWithinRangeAndMonotoneInThreshold) {
  Rng rng(GetParam() ^ 0x10);
  for (int trial = 0; trial < 30; ++trial) {
    PowerLawPcc pcc = RandomMonotonePcc(rng);
    double max_tokens = rng.Uniform(2.0, 500.0);
    double previous = max_tokens + 1.0;
    for (double threshold : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      double tokens = pcc.OptimalTokens(threshold, max_tokens);
      EXPECT_GE(tokens, 1.0);
      EXPECT_LE(tokens, max_tokens);
      // A stricter (higher) improvement requirement never recommends more
      // tokens.
      EXPECT_LE(tokens, previous + 1e-9);
      previous = tokens;
    }
  }
}

TEST_P(PccPropertyTest, ElbowLiesStrictlyInsideConvexCurves) {
  Rng rng(GetParam() ^ 0x20);
  for (int trial = 0; trial < 20; ++trial) {
    PowerLawPcc pcc{-rng.Uniform(0.4, 1.2), std::exp(rng.Uniform(4.0, 9.0))};
    std::vector<PccSample> samples;
    for (double tokens = 2.0; tokens <= 256.0; tokens *= 1.3) {
      samples.push_back({tokens, pcc.EvalRunTime(tokens)});
    }
    Result<double> elbow = FindElbowTokens(samples);
    ASSERT_TRUE(elbow.ok());
    EXPECT_GT(elbow.value(), samples.front().tokens);
    EXPECT_LT(elbow.value(), samples.back().tokens);
  }
}

TEST_P(PccPropertyTest, ScalingRoundTripsAndGuaranteesMonotonicity) {
  Rng rng(GetParam() ^ 0x30);
  std::vector<PowerLawPcc> targets;
  for (int i = 0; i < 40; ++i) targets.push_back(RandomMonotonePcc(rng));
  Result<PccTargetScaling> scaling = PccTargetScaling::Fit(targets);
  ASSERT_TRUE(scaling.ok());
  for (const PowerLawPcc& t : targets) {
    auto [t1, t2] = scaling.value().ToScaled(t);
    EXPECT_GE(t1, 0.0);
    PowerLawPcc back = scaling.value().FromScaled(t1, t2);
    EXPECT_NEAR(back.a, t.a, 1e-9 * std::fabs(t.a) + 1e-12);
    EXPECT_NEAR(back.b / t.b, 1.0, 1e-9);
  }
  // Arbitrary (even adversarial) predictions always map back to a valid
  // monotone curve — the paper's guarantee-by-construction.
  for (int i = 0; i < 50; ++i) {
    PowerLawPcc pcc = scaling.value().FromScaled(rng.Uniform(-10.0, 10.0),
                                                 rng.Uniform(-10.0, 10.0));
    EXPECT_TRUE(pcc.IsMonotoneNonIncreasing());
    EXPECT_GT(pcc.b, 0.0);
  }
}

TEST_P(PccPropertyTest, SmoothingSplineReproducesStraightLines) {
  // A natural spline fitted to collinear points is that line for any
  // lambda (the penalty term vanishes on straight lines).
  Rng rng(GetParam() ^ 0x40);
  for (int trial = 0; trial < 10; ++trial) {
    double slope = rng.Uniform(-5.0, 5.0);
    double intercept = rng.Uniform(-100.0, 100.0);
    std::vector<double> x;
    std::vector<double> y;
    double at = rng.Uniform(0.0, 10.0);
    for (int i = 0; i < 8; ++i) {
      x.push_back(at);
      y.push_back(intercept + slope * at);
      at += rng.Uniform(0.5, 3.0);
    }
    for (double lambda : {0.0, 1.0, 1e4}) {
      Result<SmoothingSpline> spline = SmoothingSpline::Fit(x, y, lambda);
      ASSERT_TRUE(spline.ok());
      for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(spline.value().Eval(x[i]), y[i],
                    1e-6 * (std::fabs(y[i]) + 1.0));
      }
    }
  }
}

TEST_P(PccPropertyTest, MonotoneCheckAgreesWithParametricCurves) {
  Rng rng(GetParam() ^ 0x50);
  for (int trial = 0; trial < 30; ++trial) {
    bool monotone = rng.Bernoulli(0.5);
    double a = rng.Uniform(0.05, 1.0) * (monotone ? -1.0 : 1.0);
    PowerLawPcc pcc{a, std::exp(rng.Uniform(3.0, 8.0))};
    std::vector<PccSample> samples;
    for (double tokens = 2.0; tokens <= 64.0; tokens *= 2.0) {
      samples.push_back({tokens, pcc.EvalRunTime(tokens)});
    }
    EXPECT_EQ(IsCurveMonotoneNonIncreasing(samples),
              pcc.IsMonotoneNonIncreasing());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PccPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace tasq
