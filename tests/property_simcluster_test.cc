// Property-based tests of the cluster simulator over generated jobs
// (parameterized over workload seeds).

#include <gtest/gtest.h>

#include <cmath>

#include "simcluster/cluster_simulator.h"
#include "workload/generator.h"

namespace tasq {
namespace {

class SimClusterPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  WorkloadGenerator MakeGenerator() const {
    WorkloadConfig config;
    config.seed = GetParam();
    return WorkloadGenerator(config);
  }
};

TEST_P(SimClusterPropertyTest, SerialRuntimeEqualsTotalWork) {
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 8)) {
    auto result = simulator.Run(job.plan, RunConfig{1.0, {}, 0});
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result.value().runtime_seconds,
                job.plan.TotalWorkTokenSeconds(),
                1e-6 * job.plan.TotalWorkTokenSeconds());
  }
}

TEST_P(SimClusterPropertyTest, FundamentalLowerBounds) {
  // runtime >= max(critical path, work / capacity) for any allocation.
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 6)) {
    for (double tokens : {2.0, 8.0, 32.0, 128.0}) {
      auto result = simulator.Run(job.plan, RunConfig{tokens, {}, 0});
      ASSERT_TRUE(result.ok());
      double runtime = result.value().runtime_seconds;
      EXPECT_GE(runtime + 1e-6, job.plan.CriticalPathSeconds());
      EXPECT_GE(runtime + 1e-6,
                job.plan.TotalWorkTokenSeconds() / std::floor(tokens));
    }
  }
}

TEST_P(SimClusterPropertyTest, RuntimeMonotoneInTokens) {
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 5)) {
    double previous = 1e300;
    for (double tokens = 1.0; tokens <= 64.0; tokens *= 2.0) {
      auto result = simulator.Run(job.plan, RunConfig{tokens, {}, 0});
      ASSERT_TRUE(result.ok());
      EXPECT_LE(result.value().runtime_seconds, previous + 1e-9);
      previous = result.value().runtime_seconds;
    }
  }
}

TEST_P(SimClusterPropertyTest, AreaInvariantToAllocation) {
  // The defining AREPAS-enabling property: without noise, total recorded
  // token-seconds equal the plan's work at every allocation.
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 5)) {
    double work = job.plan.TotalWorkTokenSeconds();
    for (double tokens : {1.0, 5.0, 40.0, 400.0}) {
      auto result = simulator.Run(job.plan, RunConfig{tokens, {}, 0});
      ASSERT_TRUE(result.ok());
      EXPECT_NEAR(result.value().skyline.Area(), work, 1e-6 * work);
    }
  }
}

TEST_P(SimClusterPropertyTest, PeakBoundedByCapacityAndWidth) {
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 5)) {
    for (double tokens : {3.0, 17.0, 200.0}) {
      auto result = simulator.Run(job.plan, RunConfig{tokens, {}, 0});
      ASSERT_TRUE(result.ok());
      EXPECT_LE(result.value().peak_tokens_used, std::floor(tokens) + 1e-9);
      // Without noise the skyline is bounded by the capacity too.
      EXPECT_LE(result.value().skyline.Peak(), std::floor(tokens) + 1e-9);
    }
  }
}

TEST_P(SimClusterPropertyTest, SkylineDurationCoversRuntime) {
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 5)) {
    auto result = simulator.Run(job.plan, RunConfig{9.0, {}, 0});
    ASSERT_TRUE(result.ok());
    double duration =
        static_cast<double>(result.value().skyline.duration_seconds());
    EXPECT_GE(duration + 1e-9, result.value().runtime_seconds);
    EXPECT_LT(duration, result.value().runtime_seconds + 1.0 + 1e-9);
  }
}

TEST_P(SimClusterPropertyTest, NoisyRuntimeCloseToClean) {
  // The noise model perturbs run time moderately: within a factor of ~2
  // of the clean run for the default settings.
  auto generator = MakeGenerator();
  ClusterSimulator simulator;
  NoiseModel noise;
  noise.enabled = true;
  for (const Job& job : generator.Generate(0, 4)) {
    auto clean = simulator.Run(job.plan, RunConfig{16.0, {}, 0});
    ASSERT_TRUE(clean.ok());
    for (uint64_t seed = 0; seed < 3; ++seed) {
      auto noisy = simulator.Run(job.plan, RunConfig{16.0, noise, seed});
      ASSERT_TRUE(noisy.ok());
      double ratio =
          noisy.value().runtime_seconds / clean.value().runtime_seconds;
      EXPECT_GT(ratio, 0.5) << "job " << job.id;
      EXPECT_LT(ratio, 2.5) << "job " << job.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimClusterPropertyTest,
                         ::testing::Values(7, 11, 23, 47, 91));

}  // namespace
}  // namespace tasq
