// Property-based tests of the workload generator across configuration
// extremes (parameterized over configs) — the generator must stay
// structurally sound at every knob setting.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "feat/featurizer.h"
#include "simcluster/cluster_simulator.h"
#include "workload/generator.h"

namespace tasq {
namespace {

struct ConfigCase {
  std::string name;
  WorkloadConfig config;
};

class WorkloadConfigPropertyTest
    : public ::testing::TestWithParam<ConfigCase> {};

std::vector<ConfigCase> AllCases() {
  std::vector<ConfigCase> cases;
  {
    ConfigCase c{"defaults", {}};
    cases.push_back(c);
  }
  {
    ConfigCase c{"all_adhoc", {}};
    c.config.recurring_fraction = 0.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"all_recurring_one_template", {}};
    c.config.recurring_fraction = 1.0;
    c.config.num_templates = 1;
    cases.push_back(c);
  }
  {
    ConfigCase c{"tiny_jobs", {}};
    c.config.tokens_median = 2.0;
    c.config.task_seconds_median = 2.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"wide_jobs_capped", {}};
    c.config.tokens_median = 500.0;
    c.config.max_stage_width = 200;
    cases.push_back(c);
  }
  {
    ConfigCase c{"no_estimate_noise", {}};
    c.config.estimate_noise_sigma = 0.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"heavy_drift", {}};
    c.config.recurrence_drift_sigma = 1.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"no_overprovision", {}};
    c.config.overprovision_lo = 1.0;
    c.config.overprovision_hi = 1.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"grown_inputs", {}};
    c.config.global_input_scale = 3.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"slow_cluster_calibration", {}};
    c.config.seconds_per_cost_unit = 2.5;
    cases.push_back(c);
  }
  return cases;
}

TEST_P(WorkloadConfigPropertyTest, JobsAreValidAndFeaturizable) {
  WorkloadGenerator generator(GetParam().config);
  Featurizer featurizer;
  for (const Job& job : generator.Generate(0, 60)) {
    ASSERT_TRUE(job.plan.Validate().ok()) << "job " << job.id;
    ASSERT_TRUE(job.graph.Validate().ok()) << "job " << job.id;
    EXPECT_GE(job.default_tokens, 1.0);
    EXPECT_LE(job.plan.MaxStageTasks(), GetParam().config.max_stage_width);
    auto features = featurizer.Featurize(job.graph);
    ASSERT_TRUE(features.ok()) << "job " << job.id;
    for (double v : features.value().job_vector) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST_P(WorkloadConfigPropertyTest, JobsExecuteAtAnyAllocation) {
  WorkloadGenerator generator(GetParam().config);
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 10)) {
    for (double tokens : {1.0, 7.0, job.default_tokens}) {
      auto result = simulator.Run(job.plan, RunConfig{tokens, {}, 0});
      ASSERT_TRUE(result.ok()) << "job " << job.id << " tokens " << tokens;
      EXPECT_GT(result.value().runtime_seconds, 0.0);
    }
  }
}

TEST_P(WorkloadConfigPropertyTest, RecurringFractionRespected) {
  const WorkloadConfig& config = GetParam().config;
  WorkloadGenerator generator(config);
  int recurring = 0;
  int total = 200;
  for (const Job& job : generator.Generate(0, total)) {
    if (job.recurring) ++recurring;
  }
  double fraction = static_cast<double>(recurring) / total;
  EXPECT_NEAR(fraction, config.recurring_fraction, 0.12)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WorkloadConfigPropertyTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tasq
