// Property-based tests of the workload generator across configuration
// extremes (parameterized over configs) — the generator must stay
// structurally sound at every knob setting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "feat/featurizer.h"
#include "simcluster/cluster_simulator.h"
#include "tasq/repository.h"
#include "workload/generator.h"

namespace tasq {
namespace {

struct ConfigCase {
  std::string name;
  WorkloadConfig config;
};

class WorkloadConfigPropertyTest
    : public ::testing::TestWithParam<ConfigCase> {};

std::vector<ConfigCase> AllCases() {
  std::vector<ConfigCase> cases;
  {
    ConfigCase c{"defaults", {}};
    cases.push_back(c);
  }
  {
    ConfigCase c{"all_adhoc", {}};
    c.config.recurring_fraction = 0.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"all_recurring_one_template", {}};
    c.config.recurring_fraction = 1.0;
    c.config.num_templates = 1;
    cases.push_back(c);
  }
  {
    ConfigCase c{"tiny_jobs", {}};
    c.config.tokens_median = 2.0;
    c.config.task_seconds_median = 2.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"wide_jobs_capped", {}};
    c.config.tokens_median = 500.0;
    c.config.max_stage_width = 200;
    cases.push_back(c);
  }
  {
    ConfigCase c{"no_estimate_noise", {}};
    c.config.estimate_noise_sigma = 0.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"heavy_drift", {}};
    c.config.recurrence_drift_sigma = 1.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"no_overprovision", {}};
    c.config.overprovision_lo = 1.0;
    c.config.overprovision_hi = 1.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"grown_inputs", {}};
    c.config.global_input_scale = 3.0;
    cases.push_back(c);
  }
  {
    ConfigCase c{"slow_cluster_calibration", {}};
    c.config.seconds_per_cost_unit = 2.5;
    cases.push_back(c);
  }
  return cases;
}

TEST_P(WorkloadConfigPropertyTest, JobsAreValidAndFeaturizable) {
  WorkloadGenerator generator(GetParam().config);
  Featurizer featurizer;
  for (const Job& job : generator.Generate(0, 60)) {
    ASSERT_TRUE(job.plan.Validate().ok()) << "job " << job.id;
    ASSERT_TRUE(job.graph.Validate().ok()) << "job " << job.id;
    EXPECT_GE(job.default_tokens, 1.0);
    EXPECT_LE(job.plan.MaxStageTasks(), GetParam().config.max_stage_width);
    auto features = featurizer.Featurize(job.graph);
    ASSERT_TRUE(features.ok()) << "job " << job.id;
    for (double v : features.value().job_vector) {
      EXPECT_TRUE(std::isfinite(v));
    }
  }
}

TEST_P(WorkloadConfigPropertyTest, JobsExecuteAtAnyAllocation) {
  WorkloadGenerator generator(GetParam().config);
  ClusterSimulator simulator;
  for (const Job& job : generator.Generate(0, 10)) {
    for (double tokens : {1.0, 7.0, job.default_tokens}) {
      auto result = simulator.Run(job.plan, RunConfig{tokens, {}, 0});
      ASSERT_TRUE(result.ok()) << "job " << job.id << " tokens " << tokens;
      EXPECT_GT(result.value().runtime_seconds, 0.0);
    }
  }
}

TEST_P(WorkloadConfigPropertyTest, RecurringFractionRespected) {
  const WorkloadConfig& config = GetParam().config;
  WorkloadGenerator generator(config);
  int recurring = 0;
  int total = 200;
  for (const Job& job : generator.Generate(0, total)) {
    if (job.recurring) ++recurring;
  }
  double fraction = static_cast<double>(recurring) / total;
  EXPECT_NEAR(fraction, config.recurring_fraction, 0.12)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, WorkloadConfigPropertyTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return info.param.name;
    });

// ---- JobGraph::Fingerprint properties ------------------------------------
//
// The serving layer (src/serve) keys its report cache on the fingerprint,
// so these properties are load-bearing: equal graphs MUST collide (or
// recurring jobs never hit the cache) and modified graphs MUST NOT (or a
// changed job is served a stale report).

TEST(FingerprintPropertyTest, EqualGraphsHashEqual) {
  WorkloadConfig config;
  config.seed = 91;
  // Two independently constructed generators: same config, same job id →
  // structurally equal graphs → equal fingerprints, with no shared state
  // that could mask address-dependent hashing.
  WorkloadGenerator a(config);
  WorkloadGenerator b(config);
  for (int64_t id = 0; id < 50; ++id) {
    JobGraph graph_a = a.GenerateJob(id).graph;
    JobGraph graph_b = b.GenerateJob(id).graph;
    EXPECT_EQ(graph_a.Fingerprint(), graph_b.Fingerprint()) << "job " << id;
    JobGraph copy = graph_a;  // A copy must trivially collide too.
    EXPECT_EQ(copy.Fingerprint(), graph_a.Fingerprint()) << "job " << id;
  }
}

TEST(FingerprintPropertyTest, DistinctJobsRarelyCollide) {
  WorkloadConfig config;
  config.seed = 92;
  config.recurring_fraction = 0.0;  // Every job is unique by construction.
  WorkloadGenerator generator(config);
  std::set<uint64_t> prints;
  const int64_t n = 300;
  for (const Job& job : generator.Generate(0, n)) {
    prints.insert(job.graph.Fingerprint());
  }
  EXPECT_EQ(prints.size(), static_cast<size_t>(n));
}

TEST(FingerprintPropertyTest, EverySingleMutationChangesTheHash) {
  WorkloadConfig config;
  config.seed = 93;
  WorkloadGenerator generator(config);
  JobGraph base = generator.GenerateJob(7).graph;
  ASSERT_GE(base.operators.size(), 3u);
  const uint64_t base_print = base.Fingerprint();

  using Mutation = std::pair<std::string, std::function<void(JobGraph&)>>;
  std::vector<Mutation> mutations;
  for (size_t i = 0; i < base.operators.size(); ++i) {
    auto name = [i](const char* field) {
      return "op" + std::to_string(i) + "." + field;
    };
    mutations.emplace_back(name("op"), [i](JobGraph& g) {
      auto& op = g.operators[i].op;
      op = op == PhysicalOperator::kFilter ? PhysicalOperator::kProject
                                           : PhysicalOperator::kFilter;
    });
    mutations.emplace_back(name("partitioning"), [i](JobGraph& g) {
      auto& p = g.operators[i].partitioning;
      p = p == PartitioningMethod::kHash ? PartitioningMethod::kRange
                                         : PartitioningMethod::kHash;
    });
    mutations.emplace_back(name("stage"), [i](JobGraph& g) {
      g.operators[i].stage += 1;
    });
    mutations.emplace_back(name("output_cardinality"), [i](JobGraph& g) {
      g.operators[i].features.output_cardinality += 1.0;
    });
    mutations.emplace_back(name("leaf_input_cardinality"), [i](JobGraph& g) {
      g.operators[i].features.leaf_input_cardinality += 1.0;
    });
    mutations.emplace_back(
        name("children_input_cardinality"), [i](JobGraph& g) {
          g.operators[i].features.children_input_cardinality += 1.0;
        });
    mutations.emplace_back(name("average_row_length"), [i](JobGraph& g) {
      g.operators[i].features.average_row_length += 1.0;
    });
    mutations.emplace_back(name("cost_subtree"), [i](JobGraph& g) {
      g.operators[i].features.cost_subtree += 1.0;
    });
    mutations.emplace_back(name("cost_exclusive"), [i](JobGraph& g) {
      g.operators[i].features.cost_exclusive += 1.0;
    });
    mutations.emplace_back(name("cost_total"), [i](JobGraph& g) {
      g.operators[i].features.cost_total += 1.0;
    });
    mutations.emplace_back(name("num_partitions"), [i](JobGraph& g) {
      g.operators[i].features.num_partitions += 1;
    });
    mutations.emplace_back(
        name("num_partitioning_columns"), [i](JobGraph& g) {
          g.operators[i].features.num_partitioning_columns += 1;
        });
    mutations.emplace_back(name("num_sort_columns"), [i](JobGraph& g) {
      g.operators[i].features.num_sort_columns += 1;
    });
  }
  // Structural mutations: edges and node count.
  mutations.emplace_back("add_edge", [](JobGraph& g) {
    g.operators.back().inputs.push_back(0);
  });
  mutations.emplace_back("drop_edge", [&base](JobGraph& g) {
    for (auto& node : g.operators) {
      if (!node.inputs.empty()) {
        node.inputs.pop_back();
        return;
      }
    }
    (void)base;
  });
  mutations.emplace_back("append_operator", [](JobGraph& g) {
    OperatorNode node;
    node.id = static_cast<int>(g.operators.size());
    node.inputs.push_back(node.id - 1);
    g.operators.push_back(node);
  });
  mutations.emplace_back("drop_operator", [](JobGraph& g) {
    g.operators.pop_back();
  });

  for (const Mutation& mutation : mutations) {
    JobGraph mutated = base;
    mutation.second(mutated);
    EXPECT_NE(mutated.Fingerprint(), base_print)
        << "mutation " << mutation.first << " did not change the hash";
  }
}

TEST(FingerprintPropertyTest, NegativeZeroHashesLikePositiveZero) {
  WorkloadConfig config;
  config.seed = 94;
  WorkloadGenerator generator(config);
  JobGraph graph = generator.GenerateJob(3).graph;
  graph.operators[0].features.output_cardinality = 0.0;
  uint64_t positive = graph.Fingerprint();
  graph.operators[0].features.output_cardinality = -0.0;
  // -0.0 == 0.0, so graphs that compare equal must hash equal even though
  // the two values have different bit patterns.
  EXPECT_EQ(graph.Fingerprint(), positive);
}

TEST(FingerprintPropertyTest, StableAcrossSerializationRoundTrip) {
  WorkloadConfig config;
  config.seed = 95;
  WorkloadGenerator generator(config);
  NoiseModel noise;
  noise.enabled = true;
  auto observed =
      ObserveWorkload(generator.Generate(0, 30), noise, 1).value();
  std::vector<uint64_t> before;
  for (const ObservedJob& job : observed) {
    before.push_back(job.job.graph.Fingerprint());
  }
  std::stringstream stream;
  ASSERT_TRUE(SaveWorkload(stream, observed).ok());
  auto loaded = LoadWorkload(stream);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), observed.size());
  for (size_t i = 0; i < loaded.value().size(); ++i) {
    EXPECT_EQ(loaded.value()[i].job.graph.Fingerprint(), before[i])
        << "job " << i;
  }
}

}  // namespace
}  // namespace tasq
