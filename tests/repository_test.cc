#include <gtest/gtest.h>

#include <sstream>

#include "tasq/repository.h"
#include "workload/generator.h"

namespace tasq {
namespace {

std::vector<ObservedJob> SampleWorkload(int64_t count) {
  WorkloadConfig config;
  config.seed = 55;
  WorkloadGenerator generator(config);
  NoiseModel noise;
  noise.enabled = true;
  return ObserveWorkload(generator.Generate(0, count), noise, 9).value();
}

TEST(RepositoryTest, RoundTripPreservesEverything) {
  std::vector<ObservedJob> workload = SampleWorkload(25);
  std::stringstream stream;
  ASSERT_TRUE(SaveWorkload(stream, workload).ok());
  Result<std::vector<ObservedJob>> loaded = LoadWorkload(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    const ObservedJob& a = workload[i];
    const ObservedJob& b = loaded.value()[i];
    EXPECT_EQ(a.job.id, b.job.id);
    EXPECT_EQ(a.job.template_id, b.job.template_id);
    EXPECT_EQ(a.job.recurring, b.job.recurring);
    EXPECT_DOUBLE_EQ(a.job.input_scale, b.job.input_scale);
    EXPECT_DOUBLE_EQ(a.job.default_tokens, b.job.default_tokens);
    ASSERT_EQ(a.job.plan.stages.size(), b.job.plan.stages.size());
    for (size_t s = 0; s < a.job.plan.stages.size(); ++s) {
      EXPECT_EQ(a.job.plan.stages[s].num_tasks,
                b.job.plan.stages[s].num_tasks);
      EXPECT_DOUBLE_EQ(a.job.plan.stages[s].task_duration_seconds,
                       b.job.plan.stages[s].task_duration_seconds);
      EXPECT_EQ(a.job.plan.stages[s].dependencies,
                b.job.plan.stages[s].dependencies);
    }
    ASSERT_EQ(a.job.graph.operators.size(), b.job.graph.operators.size());
    for (size_t n = 0; n < a.job.graph.operators.size(); ++n) {
      const OperatorNode& x = a.job.graph.operators[n];
      const OperatorNode& y = b.job.graph.operators[n];
      EXPECT_EQ(x.op, y.op);
      EXPECT_EQ(x.partitioning, y.partitioning);
      EXPECT_EQ(x.inputs, y.inputs);
      EXPECT_EQ(x.stage, y.stage);
      EXPECT_DOUBLE_EQ(x.features.output_cardinality,
                       y.features.output_cardinality);
      EXPECT_DOUBLE_EQ(x.features.cost_subtree, y.features.cost_subtree);
      EXPECT_EQ(x.features.num_partitions, y.features.num_partitions);
    }
    EXPECT_EQ(a.skyline, b.skyline);
    EXPECT_DOUBLE_EQ(a.runtime_seconds, b.runtime_seconds);
    EXPECT_DOUBLE_EQ(a.observed_tokens, b.observed_tokens);
    EXPECT_DOUBLE_EQ(a.peak_tokens, b.peak_tokens);
  }
}

TEST(RepositoryTest, LoadedWorkloadTrainsIdentically) {
  // The replayed repository must produce the same dataset as the live one.
  std::vector<ObservedJob> workload = SampleWorkload(15);
  std::stringstream stream;
  ASSERT_TRUE(SaveWorkload(stream, workload).ok());
  auto loaded = LoadWorkload(stream).value();
  DatasetBuilder builder;
  Dataset original = builder.Build(workload).value();
  Dataset replayed = builder.Build(loaded).value();
  ASSERT_EQ(original.size(), replayed.size());
  EXPECT_EQ(original.job_features, replayed.job_features);
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(original.targets[i].a, replayed.targets[i].a);
    EXPECT_DOUBLE_EQ(original.targets[i].b, replayed.targets[i].b);
  }
  EXPECT_EQ(original.point_runtimes, replayed.point_runtimes);
}

TEST(RepositoryTest, RejectsCorruptArchives) {
  std::stringstream wrong_format("workload.format not-a-workload");
  EXPECT_FALSE(LoadWorkload(wrong_format).ok());

  std::stringstream truncated;
  ASSERT_TRUE(SaveWorkload(truncated, SampleWorkload(3)).ok());
  std::string text = truncated.str();
  std::stringstream cut(text.substr(0, text.size() / 2));
  EXPECT_FALSE(LoadWorkload(cut).ok());
}

TEST(RepositoryTest, FileRoundTripAndMissingFile) {
  std::string path = ::testing::TempDir() + "/tasq_workload_test.txt";
  std::vector<ObservedJob> workload = SampleWorkload(5);
  ASSERT_TRUE(SaveWorkloadToFile(path, workload).ok());
  Result<std::vector<ObservedJob>> loaded = LoadWorkloadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 5u);
  EXPECT_FALSE(LoadWorkloadFromFile("/nonexistent/workload.txt").ok());
}

TEST(RepositoryTest, EmptyWorkloadRoundTrips) {
  std::stringstream stream;
  ASSERT_TRUE(SaveWorkload(stream, {}).ok());
  Result<std::vector<ObservedJob>> loaded = LoadWorkload(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

}  // namespace
}  // namespace tasq
