#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "selection/flighting.h"
#include "selection/job_selection.h"
#include "selection/kmeans.h"
#include "workload/generator.h"

namespace tasq {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two tight blobs at (0,0) and (10,10).
  std::vector<double> data;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    data.push_back(rng.Normal(0.0, 0.3));
    data.push_back(rng.Normal(0.0, 0.3));
  }
  for (int i = 0; i < 50; ++i) {
    data.push_back(rng.Normal(10.0, 0.3));
    data.push_back(rng.Normal(10.0, 0.3));
  }
  Rng km_rng(2);
  Result<KMeansResult> result = KMeans(data, 100, 2, 2, km_rng);
  ASSERT_TRUE(result.ok());
  // All of the first 50 share a cluster; all of the last 50 share the other.
  int first = result.value().assignments[0];
  int second = result.value().assignments[50];
  EXPECT_NE(first, second);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(result.value().assignments[i], first);
    EXPECT_EQ(result.value().assignments[50 + i], second);
  }
  EXPECT_LT(result.value().inertia, 100.0);
}

TEST(KMeansTest, KEqualsRowsGivesZeroInertia) {
  std::vector<double> data = {0.0, 1.0, 2.0, 3.0};
  Rng rng(3);
  Result<KMeansResult> result = KMeans(data, 4, 1, 4, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().inertia, 0.0, 1e-12);
  std::set<int> assignments(result.value().assignments.begin(),
                            result.value().assignments.end());
  EXPECT_EQ(assignments.size(), 4u);
}

TEST(KMeansTest, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_FALSE(KMeans({}, 0, 2, 1, rng).ok());
  EXPECT_FALSE(KMeans({1.0, 2.0}, 2, 1, 3, rng).ok());  // k > rows.
  EXPECT_FALSE(KMeans({1.0, 2.0}, 2, 1, 0, rng).ok());
}

TEST(KMeansTest, NearestCentroidAgreesWithAssignments) {
  std::vector<double> data;
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    data.push_back(rng.Uniform(0.0, 10.0));
  }
  Rng km_rng(5);
  Result<KMeansResult> result = KMeans(data, 60, 1, 4, km_rng);
  ASSERT_TRUE(result.ok());
  for (size_t r = 0; r < 60; ++r) {
    EXPECT_EQ(NearestCentroid(result.value(), &data[r]),
              result.value().assignments[r]);
  }
}

class SelectionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Population: two clusters, 70/30. The pool is heavily biased to the
    // minority cluster — exactly the situation in Figure 11.
    Rng rng(7);
    for (int i = 0; i < 700; ++i) {
      features_.push_back(rng.Normal(0.0, 0.5));
      summary_.push_back(rng.Normal(100.0, 10.0));
      template_ids_.push_back(i % 50);
    }
    for (int i = 0; i < 300; ++i) {
      features_.push_back(rng.Normal(10.0, 0.5));
      summary_.push_back(rng.Normal(200.0, 10.0));
      template_ids_.push_back(50 + i % 30);
    }
    // Pool: 40 from cluster A, 160 from cluster B.
    for (size_t i = 0; i < 40; ++i) pool_.push_back(i);
    for (size_t i = 700; i < 860; ++i) pool_.push_back(i);
  }

  std::vector<double> features_;
  std::vector<double> summary_;
  std::vector<int> template_ids_;
  std::vector<size_t> pool_;
};

TEST_F(SelectionFixture, MatchesPopulationProportions) {
  SelectionConfig config;
  config.num_clusters = 2;
  // Small enough that the pool's 40 majority-cluster jobs can fill the
  // majority cluster's quota.
  config.sample_size = 50;
  config.max_per_template = 5;
  Result<SelectionOutcome> outcome = SelectRepresentativeJobs(
      features_, 1000, 1, summary_, template_ids_, pool_, config);
  ASSERT_TRUE(outcome.ok());
  const SelectionOutcome& o = outcome.value();
  // Population split 70/30; the pool is 20/80; the subset must be close to
  // the population again.
  double pop_max = std::max(o.population_proportions[0],
                            o.population_proportions[1]);
  double sel_max =
      std::max(o.selected_proportions[0], o.selected_proportions[1]);
  EXPECT_NEAR(pop_max, 0.7, 0.05);
  EXPECT_NEAR(sel_max, pop_max, 0.12);
  // And the KS statistic improves (paper's quality evaluation).
  EXPECT_LT(o.ks_after, o.ks_before);
}

TEST_F(SelectionFixture, RespectsTemplateCap) {
  SelectionConfig config;
  config.num_clusters = 2;
  config.sample_size = 150;
  config.max_per_template = 2;
  Result<SelectionOutcome> outcome = SelectRepresentativeJobs(
      features_, 1000, 1, summary_, template_ids_, pool_, config);
  ASSERT_TRUE(outcome.ok());
  std::map<int, int> uses;
  for (size_t idx : outcome.value().selected) {
    ++uses[template_ids_[idx]];
  }
  for (const auto& [tmpl, count] : uses) {
    EXPECT_LE(count, 2) << "template " << tmpl;
  }
}

TEST_F(SelectionFixture, ValidatesInput) {
  SelectionConfig config;
  EXPECT_FALSE(SelectRepresentativeJobs({}, 0, 1, {}, {}, {}, config).ok());
  EXPECT_FALSE(SelectRepresentativeJobs(features_, 1000, 1, summary_,
                                        template_ids_, {}, config)
                   .ok());
  std::vector<size_t> bad_pool = {99999};
  EXPECT_FALSE(SelectRepresentativeJobs(features_, 1000, 1, summary_,
                                        template_ids_, bad_pool, config)
                   .ok());
}

TEST(FlightingTest, ProducesAllTokenFractionsDescending) {
  WorkloadGenerator generator(WorkloadConfig{});
  Job job = generator.GenerateJob(3);
  FlightConfig config;
  config.repetitions = 2;
  FlightHarness harness(config);
  Result<FlightedJob> flighted = harness.FlightJob(job);
  ASSERT_TRUE(flighted.ok());
  ASSERT_EQ(flighted.value().flights.size(), 4u);
  for (size_t i = 1; i < flighted.value().flights.size(); ++i) {
    EXPECT_LE(flighted.value().flights[i].tokens,
              flighted.value().flights[i - 1].tokens);
  }
  EXPECT_TRUE(flighted.value().enough_flights);
  EXPECT_TRUE(flighted.value().within_allocation);
  for (const FlightRecord& record : flighted.value().flights) {
    EXPECT_EQ(record.repetition_runtimes.size(), 2u);
    EXPECT_GT(record.runtime_seconds, 0.0);
    EXPECT_GT(record.skyline.duration_seconds(), 0u);
  }
}

TEST(FlightingTest, DeterministicGivenSeed) {
  WorkloadGenerator generator(WorkloadConfig{});
  Job job = generator.GenerateJob(8);
  FlightConfig config;
  config.seed = 42;
  FlightHarness a(config);
  FlightHarness b(config);
  auto fa = a.FlightJob(job);
  auto fb = b.FlightJob(job);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  for (size_t i = 0; i < fa.value().flights.size(); ++i) {
    EXPECT_DOUBLE_EQ(fa.value().flights[i].runtime_seconds,
                     fb.value().flights[i].runtime_seconds);
  }
}

TEST(FlightingTest, NoiselessFlightsAreMonotone) {
  WorkloadGenerator generator(WorkloadConfig{});
  FlightConfig config;
  config.noise.enabled = false;
  config.repetitions = 1;
  FlightHarness harness(config);
  for (const Job& job : generator.Generate(0, 15)) {
    Result<FlightedJob> flighted = harness.FlightJob(job);
    ASSERT_TRUE(flighted.ok());
    EXPECT_TRUE(flighted.value().monotone) << "job " << job.id;
    EXPECT_TRUE(flighted.value().NonAnomalous());
  }
}

TEST(FlightingTest, MostNoisyFlightsPassFilters) {
  // The paper found 96% of flighted jobs monotone within 10% tolerance; the
  // simulated cluster's noise model should land in the same regime.
  WorkloadGenerator generator(WorkloadConfig{});
  FlightHarness harness(FlightConfig{});
  std::vector<Job> jobs = generator.Generate(100, 40);
  std::vector<FlightedJob> flighted = harness.FlightJobs(jobs);
  ASSERT_EQ(flighted.size(), jobs.size());
  size_t kept = FilterNonAnomalous(flighted).size();
  EXPECT_GT(static_cast<double>(kept) / static_cast<double>(jobs.size()), 0.7);
}

}  // namespace
}  // namespace tasq
