#include <gtest/gtest.h>

#include <sstream>

#include "common/text_io.h"
#include "feat/featurizer.h"
#include "gbdt/xgb_pcc.h"
#include "gnn/gnn_model.h"
#include "ml/matrix_io.h"
#include "nn/nn_model.h"
#include "tasq/evaluation.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

namespace tasq {
namespace {

TEST(TextArchiveTest, ScalarVectorStringRoundTrip) {
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  writer.Scalar("pi", 3.141592653589793);
  writer.Scalar("count", static_cast<int64_t>(-42));
  writer.String("name", "tasq-v1");
  writer.Vector("vec", {1.5, -2.25, 1e-300});

  TextArchiveReader reader(stream);
  double pi = 0.0;
  int64_t count = 0;
  std::string name;
  std::vector<double> vec;
  reader.Scalar("pi", pi);
  reader.Scalar("count", count);
  reader.String("name", name);
  reader.Vector("vec", vec);
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  EXPECT_DOUBLE_EQ(pi, 3.141592653589793);
  EXPECT_EQ(count, -42);
  EXPECT_EQ(name, "tasq-v1");
  ASSERT_EQ(vec.size(), 3u);
  EXPECT_DOUBLE_EQ(vec[2], 1e-300);
}

TEST(TextArchiveTest, TagMismatchLatchesError) {
  std::stringstream stream("alpha 1.0\nbeta 2.0\n");
  TextArchiveReader reader(stream);
  double value = 0.0;
  reader.Scalar("alpha", value);
  EXPECT_TRUE(reader.status().ok());
  reader.Scalar("gamma", value);  // Wrong tag.
  EXPECT_FALSE(reader.status().ok());
  // Subsequent reads stay failed and do not touch outputs.
  double untouched = 7.0;
  reader.Scalar("beta", untouched);
  EXPECT_DOUBLE_EQ(untouched, 7.0);
}

TEST(TextArchiveTest, TruncatedArchiveFails) {
  std::stringstream stream("vec 5 1.0 2.0\n");
  TextArchiveReader reader(stream);
  std::vector<double> vec;
  reader.Vector("vec", vec);
  EXPECT_FALSE(reader.status().ok());
}

TEST(MatrixIoTest, RoundTrip) {
  Matrix m(2, 3, {1.0, -2.0, 3.5, 0.0, 1e-12, 9.0});
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  SaveMatrix(writer, "m", m);
  TextArchiveReader reader(stream);
  Matrix back = LoadMatrix(reader, "m");
  ASSERT_TRUE(reader.status().ok());
  ASSERT_TRUE(back.SameShape(m));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.data()[i], m.data()[i]);
  }
}

TEST(FeatureScalerIoTest, RoundTripPreservesTransform) {
  std::vector<double> data = {1.0, 10.0, 3.0, 30.0, 5.0, 20.0};
  FeatureScaler scaler = FeatureScaler::Fit(data, 3, 2).value();
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  scaler.Serialize(writer, "s");
  TextArchiveReader reader(stream);
  FeatureScaler loaded = FeatureScaler::Deserialize(reader, "s");
  ASSERT_TRUE(reader.status().ok());
  std::vector<double> a = {4.0, 25.0};
  std::vector<double> b = a;
  scaler.Transform(a);
  loaded.Transform(b);
  EXPECT_EQ(a, b);
}

TEST(GbdtIoTest, RoundTripPredictionsIdentical) {
  Rng rng(4);
  std::vector<double> features;
  std::vector<double> targets;
  for (int i = 0; i < 400; ++i) {
    double x0 = rng.Uniform(0.0, 1.0);
    double x1 = rng.Uniform(0.0, 1.0);
    features.insert(features.end(), {x0, x1});
    targets.push_back(std::exp(1.0 + 2.0 * x0));
  }
  GbdtOptions options;
  options.num_trees = 40;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Train(features, 400, 2, targets).ok());

  std::stringstream stream;
  TextArchiveWriter writer(stream);
  model.Serialize(writer);
  TextArchiveReader reader(stream);
  GbdtRegressor loaded = GbdtRegressor::Deserialize(reader);
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  EXPECT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.num_trees(), model.num_trees());
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row = {rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)};
    EXPECT_DOUBLE_EQ(loaded.Predict(row), model.Predict(row));
  }
}

TEST(GbdtIoTest, CorruptTreeIsRejected) {
  std::stringstream stream;
  TextArchiveWriter writer(stream);
  writer.String("gbdt.format", "tasq-gbdt-v1");
  writer.Scalar("gbdt.objective", static_cast<int64_t>(1));
  writer.Scalar("gbdt.num_trees_opt", static_cast<int64_t>(1));
  writer.Scalar("gbdt.max_depth", static_cast<int64_t>(3));
  writer.Scalar("gbdt.learning_rate", 0.1);
  writer.Scalar("gbdt.min_samples_leaf", static_cast<int64_t>(1));
  writer.Scalar("gbdt.l2_lambda", 1.0);
  writer.Scalar("gbdt.max_bins", static_cast<int64_t>(8));
  writer.Scalar("gbdt.subsample", 1.0);
  writer.Scalar("gbdt.seed", static_cast<int64_t>(0));
  writer.Scalar("gbdt.dim", static_cast<int64_t>(2));
  writer.Scalar("gbdt.has_base", static_cast<int64_t>(1));
  writer.Scalar("gbdt.base_score", 1.0);
  writer.Scalar("gbdt.num_trees", static_cast<int64_t>(1));
  // Node referencing a child index out of range.
  writer.Vector("gbdt.tree", {0.0, 0.5, 7.0, 8.0, 0.0});
  TextArchiveReader reader(stream);
  GbdtRegressor loaded = GbdtRegressor::Deserialize(reader);
  EXPECT_FALSE(reader.status().ok());
}

// Small trained models shared by the NN/GNN round-trip tests.
PccSupervision TinySupervision(size_t n, Rng& rng) {
  PccSupervision supervision;
  for (size_t i = 0; i < n; ++i) {
    PowerLawPcc target{-rng.Uniform(0.2, 0.8), std::exp(rng.Uniform(4.0, 7.0))};
    supervision.targets.push_back(target);
    double tokens = rng.Uniform(10.0, 100.0);
    supervision.observed_tokens.push_back(tokens);
    supervision.observed_runtime.push_back(target.EvalRunTime(tokens));
  }
  return supervision;
}

TEST(NnIoTest, RoundTripPredictionsIdentical) {
  Rng rng(5);
  size_t n = 60;
  size_t dim = 4;
  std::vector<double> features;
  for (size_t i = 0; i < n * dim; ++i) {
    features.push_back(rng.Uniform(-1.0, 1.0));
  }
  PccSupervision supervision = TinySupervision(n, rng);
  NnOptions options;
  options.epochs = 5;
  options.hidden_sizes = {8, 4};
  NnPccModel model(dim, options);
  ASSERT_TRUE(model.Train(features, supervision).ok());

  std::stringstream stream;
  TextArchiveWriter writer(stream);
  model.Serialize(writer);
  TextArchiveReader reader(stream);
  NnPccModel loaded = NnPccModel::Deserialize(reader);
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  ASSERT_TRUE(loaded.trained());
  EXPECT_EQ(loaded.NumParameters(), model.NumParameters());
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0),
                               rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    auto a = model.Predict(row);
    auto b = loaded.Predict(row);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a.value().a, b.value().a);
    EXPECT_DOUBLE_EQ(a.value().b, b.value().b);
  }
}

TEST(GnnIoTest, RoundTripPredictionsIdentical) {
  Rng rng(6);
  size_t dim = 5;
  std::vector<GraphExample> graphs;
  for (int g = 0; g < 30; ++g) {
    GraphExample graph;
    graph.num_nodes = static_cast<size_t>(rng.UniformInt(2, 6));
    graph.node_features.resize(graph.num_nodes * dim);
    for (double& v : graph.node_features) v = rng.Uniform(-1.0, 1.0);
    graph.norm_adjacency.assign(graph.num_nodes * graph.num_nodes, 0.0);
    for (size_t i = 0; i < graph.num_nodes; ++i) {
      graph.norm_adjacency[i * graph.num_nodes + i] = 1.0;
    }
    graphs.push_back(std::move(graph));
  }
  PccSupervision supervision = TinySupervision(graphs.size(), rng);
  GnnOptions options;
  options.epochs = 2;
  options.gcn_hidden = {6};
  options.head_hidden = {4};
  GnnPccModel model(dim, options);
  ASSERT_TRUE(model.Train(graphs, supervision).ok());

  std::stringstream stream;
  TextArchiveWriter writer(stream);
  model.Serialize(writer);
  TextArchiveReader reader(stream);
  GnnPccModel loaded = GnnPccModel::Deserialize(reader);
  ASSERT_TRUE(reader.status().ok()) << reader.status().ToString();
  ASSERT_TRUE(loaded.trained());
  for (const GraphExample& graph : graphs) {
    auto a = model.Predict(graph);
    auto b = loaded.Predict(graph);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a.value().a, b.value().a);
    EXPECT_DOUBLE_EQ(a.value().b, b.value().b);
  }
}

TEST(TasqIoTest, PipelineRoundTripScoresIdentically) {
  WorkloadConfig config;
  config.seed = 77;
  WorkloadGenerator generator(config);
  NoiseModel noise;
  noise.enabled = true;
  auto observed = ObserveWorkload(generator.Generate(0, 80), noise, 1).value();

  TasqOptions options;
  options.nn.epochs = 10;
  options.gnn.epochs = 2;
  options.gnn.gcn_hidden = {8};
  options.gnn.head_hidden = {8};
  options.xgb.gbdt.num_trees = 20;
  Tasq original(options);
  ASSERT_TRUE(original.Train(observed).ok());

  std::stringstream stream;
  ASSERT_TRUE(original.Save(stream).ok());
  Result<Tasq> loaded = Tasq::Load(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().trained());

  Job job = generator.GenerateJob(5000);
  for (ModelKind kind :
       {ModelKind::kXgboostPl, ModelKind::kNn, ModelKind::kGnn}) {
    auto a = original.PredictPcc(job.graph, kind, job.default_tokens);
    auto b = loaded.value().PredictPcc(job.graph, kind, job.default_tokens);
    ASSERT_TRUE(a.ok()) << ModelKindName(kind);
    ASSERT_TRUE(b.ok()) << ModelKindName(kind);
    EXPECT_DOUBLE_EQ(a.value().a, b.value().a) << ModelKindName(kind);
    EXPECT_DOUBLE_EQ(a.value().b, b.value().b) << ModelKindName(kind);
  }
  // XGBoost-SS curves also agree.
  auto curve_a = original.PredictCurve(job.graph, ModelKind::kXgboostSs,
                                       job.default_tokens,
                                       {job.default_tokens * 0.8});
  auto curve_b = loaded.value().PredictCurve(job.graph, ModelKind::kXgboostSs,
                                             job.default_tokens,
                                             {job.default_tokens * 0.8});
  ASSERT_TRUE(curve_a.ok());
  ASSERT_TRUE(curve_b.ok());
  EXPECT_DOUBLE_EQ(curve_a.value()[0].runtime_seconds,
                   curve_b.value()[0].runtime_seconds);
}

TEST(TasqIoTest, FileRoundTripAndErrors) {
  Tasq untrained;
  std::stringstream stream;
  EXPECT_FALSE(untrained.Save(stream).ok());
  EXPECT_FALSE(Tasq::LoadFromFile("/nonexistent/path/model.tasq").ok());

  std::stringstream garbage("not a pipeline archive");
  EXPECT_FALSE(Tasq::Load(garbage).ok());
}

}  // namespace
}  // namespace tasq
