// Tests of the concurrent PCC serving layer (src/serve): thread-pool
// semantics, fingerprint-cache behavior, bounded-queue backpressure,
// graceful shutdown, and — most importantly — that batched/cached/
// concurrent serving is byte-identical to scoring sequentially.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "serve/cache.h"
#include "serve/latency_histogram.h"
#include "serve/server.h"
#include "serve/thread_pool.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

namespace tasq {
namespace {

// ---- ThreadPool ----------------------------------------------------------

TEST(ServeThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4, 64);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&ran]() { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 50);
}

TEST(ServeThreadPoolTest, ShutdownDrainsQueuedTasksAndRejectsNewOnes) {
  ThreadPool pool(1, 64);
  std::atomic<int> ran{0};
  // The gate keeps the single worker busy so later tasks pile up queued.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(pool.Submit([opened]() { opened.wait(); }));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.Submit([&ran]() { ran.fetch_add(1); }));
  }
  gate.set_value();
  pool.Shutdown();  // Graceful: all 10 queued tasks must have run.
  EXPECT_EQ(ran.load(), 10);
  EXPECT_FALSE(pool.Submit([]() {}));
  EXPECT_TRUE(pool.shutting_down());
}

TEST(ServeThreadPoolTest, BoundedQueueBlocksProducerUntilSpaceFrees) {
  ThreadPool pool(1, 1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  ASSERT_TRUE(pool.Submit([opened]() { opened.wait(); }));  // Occupies worker.
  ASSERT_TRUE(pool.Submit([]() {}));                        // Fills the queue.
  std::atomic<bool> third_accepted{false};
  std::thread producer([&]() {
    ASSERT_TRUE(pool.Submit([]() {}));  // Must block until the gate opens.
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_accepted.load()) << "Submit should still be blocked";
  gate.set_value();
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  pool.Shutdown();
}

TEST(ServeThreadPoolTest, ParallelForRunsOnThePool) {
  ThreadPool pool(3, 16);
  const size_t n = 1000;
  std::vector<double> out(n, 0.0);
  ParallelFor(pool, n, [&](size_t i) { out[i] = static_cast<double>(i); });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_DOUBLE_EQ(out[i], static_cast<double>(i));
  }
  pool.Shutdown();
}

// ---- ReportCache ---------------------------------------------------------

WhatIfReport TinyReport(double reference_tokens) {
  WhatIfReport report;
  report.reference_tokens = reference_tokens;
  return report;
}

TEST(ServeCacheTest, HitMissAndLruEviction) {
  ReportCache cache(2);
  ReportCacheKey a{1, ModelKind::kNn, 10.0, 9};
  ReportCacheKey b{2, ModelKind::kNn, 10.0, 9};
  ReportCacheKey c{3, ModelKind::kNn, 10.0, 9};

  EXPECT_FALSE(cache.Get(a).has_value());
  cache.Put(a, TinyReport(1.0));
  cache.Put(b, TinyReport(2.0));
  ASSERT_TRUE(cache.Get(a).has_value());  // Refreshes a's recency.
  EXPECT_DOUBLE_EQ(cache.Get(a)->reference_tokens, 1.0);
  cache.Put(c, TinyReport(3.0));  // Evicts b (least recently used), not a.
  EXPECT_TRUE(cache.Get(a).has_value());
  EXPECT_FALSE(cache.Get(b).has_value());
  EXPECT_TRUE(cache.Get(c).has_value());

  ReportCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.size, 2u);
  EXPECT_EQ(counters.capacity, 2u);
  EXPECT_EQ(counters.hits, 4u);
  EXPECT_EQ(counters.misses, 2u);
}

TEST(ServeCacheTest, KeyDistinguishesEveryScoringKnob) {
  ReportCache cache(16);
  ReportCacheKey base{42, ModelKind::kNn, 10.0, 9};
  cache.Put(base, TinyReport(1.0));
  ReportCacheKey other_model = base;
  other_model.model = ModelKind::kGnn;
  ReportCacheKey other_tokens = base;
  other_tokens.reference_tokens = 20.0;
  ReportCacheKey other_grid = base;
  other_grid.grid_points = 17;
  ReportCacheKey other_fingerprint = base;
  other_fingerprint.fingerprint = 43;
  EXPECT_TRUE(cache.Get(base).has_value());
  EXPECT_FALSE(cache.Get(other_model).has_value());
  EXPECT_FALSE(cache.Get(other_tokens).has_value());
  EXPECT_FALSE(cache.Get(other_grid).has_value());
  EXPECT_FALSE(cache.Get(other_fingerprint).has_value());
}

TEST(ServeCacheTest, SignedZeroTokensHashToTheSameBucket) {
  // operator== compares doubles, under which -0.0 == +0.0; the hash must
  // agree or equal keys land in different unordered_map buckets and a
  // recurring job stops hitting its own cache entry (regression: the hash
  // used the raw bit pattern, which differs between the two zeros).
  ReportCache cache(16);
  ReportCacheKey positive{42, ModelKind::kNn, +0.0, 9};
  ReportCacheKey negative{42, ModelKind::kNn, -0.0, 9};
  ASSERT_TRUE(positive == negative);
  EXPECT_EQ(ReportCacheKeyHash()(positive), ReportCacheKeyHash()(negative));
  cache.Put(negative, TinyReport(1.0));
  EXPECT_TRUE(cache.Get(positive).has_value());
  EXPECT_EQ(cache.counters().size, 1u);
}

TEST(ServeCacheTest, ZeroCapacityDisablesCaching) {
  ReportCache cache(0);
  ReportCacheKey key{7, ModelKind::kNn, 10.0, 9};
  cache.Put(key, TinyReport(1.0));
  EXPECT_FALSE(cache.Get(key).has_value());
  EXPECT_EQ(cache.counters().insertions, 0u);
}

// ---- Fingerprint (serving-side determinism) ------------------------------

TEST(ServeFingerprintTest, StableAcrossThreadCounts) {
  WorkloadConfig config;
  config.seed = 23;
  WorkloadGenerator generator(config);
  std::vector<Job> jobs = generator.Generate(0, 40);
  auto fingerprint_all = [&jobs](unsigned threads) {
    std::vector<uint64_t> prints(jobs.size());
    ParallelFor(
        jobs.size(),
        [&](size_t i) { prints[i] = jobs[i].graph.Fingerprint(); }, threads);
    return prints;
  };
  std::vector<uint64_t> one = fingerprint_all(1);
  std::vector<uint64_t> two = fingerprint_all(2);
  std::vector<uint64_t> eight = fingerprint_all(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

// ---- PccServer -----------------------------------------------------------

class ServeServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 31;
    generator_ = new WorkloadGenerator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto observed =
        ObserveWorkload(generator_->Generate(0, 120), noise, 1).value();
    TasqOptions options;
    options.nn.epochs = 20;
    options.gnn.epochs = 2;
    options.gnn.gcn_hidden = {8};
    options.gnn.head_hidden = {8};
    options.xgb.gbdt.num_trees = 30;
    pipeline_ = new Tasq(options);
    ASSERT_TRUE(pipeline_->Train(observed).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete generator_;
    pipeline_ = nullptr;
    generator_ = nullptr;
  }

  static std::vector<ScoreRequest> MakeRequests(int64_t first_id, int count,
                                                ModelKind model) {
    std::vector<ScoreRequest> requests;
    for (const Job& job : generator_->Generate(first_id, count)) {
      ScoreRequest request;
      request.graph = job.graph;
      request.model = model;
      request.reference_tokens = job.default_tokens;
      requests.push_back(std::move(request));
    }
    return requests;
  }

  static Tasq* pipeline_;
  static WorkloadGenerator* generator_;
};

Tasq* ServeServerTest::pipeline_ = nullptr;
WorkloadGenerator* ServeServerTest::generator_ = nullptr;

TEST_F(ServeServerTest, BatchedResultsMatchSequentialByteForByte) {
  for (ModelKind model : {ModelKind::kNn, ModelKind::kGnn,
                          ModelKind::kXgboostPl, ModelKind::kXgboostSs}) {
    std::vector<ScoreRequest> requests = MakeRequests(500, 12, model);
    // Sequential ground truth straight through the pipeline.
    std::vector<std::string> expected;
    for (const ScoreRequest& request : requests) {
      auto report =
          BuildWhatIfReport(*pipeline_, request.graph, request.model,
                            request.reference_tokens, request.grid_points);
      ASSERT_TRUE(report.ok()) << ModelKindName(model);
      expected.push_back(report.value().ToText());
    }
    PccServerOptions options;
    options.num_threads = 4;
    options.max_batch = 5;  // Forces multi-request batches with remainder.
    PccServer server(*pipeline_, options);
    std::vector<Result<WhatIfReport>> results = server.ScoreBatch(requests);
    ASSERT_EQ(results.size(), expected.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << ModelKindName(model) << " request " << i;
      EXPECT_EQ(results[i].value().ToText(), expected[i])
          << ModelKindName(model) << " request " << i;
    }
  }
}

TEST_F(ServeServerTest, CacheHitsSkipInferenceAndMatchFreshScores) {
  std::vector<ScoreRequest> requests = MakeRequests(600, 6, ModelKind::kNn);
  PccServerOptions options;
  options.num_threads = 2;
  PccServer server(*pipeline_, options);

  std::vector<std::string> first;
  for (const ScoreRequest& request : requests) {
    auto result = server.Score(request);
    ASSERT_TRUE(result.ok());
    first.push_back(result.value().ToText());
  }
  ServerStats cold = server.Stats();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 6u);

  for (size_t i = 0; i < requests.size(); ++i) {
    auto result = server.Score(requests[i]);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().ToText(), first[i]) << "request " << i;
  }
  ServerStats warm = server.Stats();
  EXPECT_EQ(warm.cache_hits, 6u);
  EXPECT_EQ(warm.cache_misses, 6u);
  // The second pass produced no new batches: inference was skipped.
  EXPECT_EQ(warm.batched_requests, cold.batched_requests);
  EXPECT_EQ(warm.completed, 12u);
}

TEST_F(ServeServerTest, CacheEvictionIsBoundedAndCounted) {
  std::vector<ScoreRequest> requests = MakeRequests(700, 8, ModelKind::kNn);
  PccServerOptions options;
  options.num_threads = 1;
  options.cache_capacity = 3;
  PccServer server(*pipeline_, options);
  for (const ScoreRequest& request : requests) {
    ASSERT_TRUE(server.Score(request).ok());
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache_size, 3u);
  EXPECT_EQ(stats.cache_evictions, 5u);
}

TEST_F(ServeServerTest, BoundedQueueAppliesBackpressure) {
  std::vector<ScoreRequest> requests = MakeRequests(800, 40, ModelKind::kNn);
  PccServerOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4;
  options.cache_capacity = 0;  // Every request must traverse the queue.
  PccServer server(*pipeline_, options);

  // Flood from several producers; the bounded queue must never overfill.
  std::vector<std::thread> producers;
  std::vector<std::vector<Result<WhatIfReport>>> results(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p]() {
      std::vector<ScoreRequest> slice(
          requests.begin() + p * 10, requests.begin() + (p + 1) * 10);
      results[p] = server.ScoreBatch(slice);
    });
  }
  for (std::thread& producer : producers) producer.join();
  for (const auto& slice : results) {
    ASSERT_EQ(slice.size(), 10u);
    for (const auto& result : slice) ASSERT_TRUE(result.ok());
  }
  ServerStats stats = server.Stats();
  EXPECT_LE(stats.max_queue_depth, 4u);
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST_F(ServeServerTest, ShutdownFulfillsInflightAndRejectsNewRequests) {
  std::vector<ScoreRequest> requests = MakeRequests(900, 30, ModelKind::kNn);
  PccServerOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  PccServer server(*pipeline_, options);

  std::vector<std::future<Result<WhatIfReport>>> futures;
  for (ScoreRequest& request : requests) {
    futures.push_back(server.Submit(std::move(request)));
  }
  server.Shutdown();  // Graceful: everything accepted must still resolve OK.
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<WhatIfReport> result = futures[i].get();
    ASSERT_TRUE(result.ok()) << "request " << i;
  }
  // Post-shutdown submissions resolve immediately with FailedPrecondition.
  ScoreRequest late;
  late.graph = generator_->GenerateJob(999).graph;
  late.reference_tokens = 10.0;
  Result<WhatIfReport> rejected = server.Score(std::move(late));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 30u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(ServeServerTest, InvalidGraphFailsThatRequestOnly) {
  std::vector<ScoreRequest> good = MakeRequests(950, 3, ModelKind::kNn);
  ScoreRequest bad;
  bad.graph = JobGraph{};  // No operators: featurization must fail.
  bad.model = ModelKind::kNn;
  bad.reference_tokens = 10.0;
  std::vector<ScoreRequest> requests;
  requests.push_back(std::move(good[0]));
  requests.push_back(std::move(bad));
  requests.push_back(std::move(good[1]));
  requests.push_back(std::move(good[2]));
  PccServerOptions options;
  options.num_threads = 1;
  options.max_batch = 4;  // One batch holding good and bad requests.
  PccServer server(*pipeline_, options);
  std::vector<Result<WhatIfReport>> results = server.ScoreBatch(requests);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
}

TEST_F(ServeServerTest, StatsSnapshotIsCoherentAndPrintable) {
  std::vector<ScoreRequest> requests = MakeRequests(1000, 5, ModelKind::kNn);
  PccServer server(*pipeline_, PccServerOptions{});
  for (const ScoreRequest& request : requests) {
    ASSERT_TRUE(server.Score(request).ok());
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.received, 5u);
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 5u);
  EXPECT_EQ(stats.end_to_end.count, 5u);
  EXPECT_GT(stats.end_to_end.total_ms, 0.0);
  // Tail latency comes from the lock-free histogram: quantiles are
  // positive once anything was served, monotone in q, and never exceed
  // the observed maximum.
  EXPECT_GT(stats.end_to_end.p50_ms(), 0.0);
  EXPECT_LE(stats.end_to_end.p50_ms(), stats.end_to_end.p99_ms());
  EXPECT_LE(stats.end_to_end.p99_ms(), stats.end_to_end.max_ms);
  EXPECT_GE(stats.end_to_end.max_ms, stats.end_to_end.mean_ms());
  std::string text = stats.ToText();
  EXPECT_NE(text.find("requests:"), std::string::npos);
  EXPECT_NE(text.find("cache:"), std::string::npos);
  EXPECT_NE(text.find("latency:"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace tasq
