#include <gtest/gtest.h>

#include <cmath>

#include "pcc/pcc.h"
#include "simcluster/cluster_simulator.h"
#include "simcluster/job_plan.h"

namespace tasq {
namespace {

JobPlan SingleStagePlan(int tasks, double duration) {
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, tasks, duration});
  return plan;
}

// A 3-stage chain: wide extract, narrow aggregate, medium output.
JobPlan ChainPlan() {
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, 40, 10.0});
  plan.stages.push_back(StageSpec{1, {0}, 4, 20.0});
  plan.stages.push_back(StageSpec{2, {1}, 12, 5.0});
  return plan;
}

TEST(JobPlanTest, WorkAndCriticalPath) {
  JobPlan plan = ChainPlan();
  EXPECT_DOUBLE_EQ(plan.TotalWorkTokenSeconds(), 40 * 10.0 + 4 * 20.0 + 60.0);
  EXPECT_EQ(plan.MaxStageTasks(), 40);
  EXPECT_DOUBLE_EQ(plan.CriticalPathSeconds(), 35.0);
}

TEST(JobPlanTest, CriticalPathTakesLongestBranch) {
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, 1, 5.0});
  plan.stages.push_back(StageSpec{1, {}, 1, 50.0});
  plan.stages.push_back(StageSpec{2, {0, 1}, 1, 3.0});
  EXPECT_DOUBLE_EQ(plan.CriticalPathSeconds(), 53.0);
}

TEST(JobPlanTest, ValidateCatchesStructuralErrors) {
  EXPECT_FALSE(JobPlan{}.Validate().ok());

  JobPlan bad_id;
  bad_id.stages.push_back(StageSpec{1, {}, 1, 1.0});
  EXPECT_FALSE(bad_id.Validate().ok());

  JobPlan bad_tasks;
  bad_tasks.stages.push_back(StageSpec{0, {}, 0, 1.0});
  EXPECT_FALSE(bad_tasks.Validate().ok());

  JobPlan bad_duration;
  bad_duration.stages.push_back(StageSpec{0, {}, 1, 0.0});
  EXPECT_FALSE(bad_duration.Validate().ok());

  JobPlan forward_dep;
  forward_dep.stages.push_back(StageSpec{0, {1}, 1, 1.0});
  forward_dep.stages.push_back(StageSpec{1, {}, 1, 1.0});
  EXPECT_FALSE(forward_dep.Validate().ok());

  EXPECT_TRUE(ChainPlan().Validate().ok());
}

TEST(ClusterSimulatorTest, SerialExecutionOnOneToken) {
  ClusterSimulator sim;
  JobPlan plan = SingleStagePlan(10, 3.0);
  Result<RunResult> result = sim.Run(plan, RunConfig{1.0, {}, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().runtime_seconds, 30.0);
  EXPECT_DOUBLE_EQ(result.value().peak_tokens_used, 1.0);
  EXPECT_NEAR(result.value().skyline.Area(), 30.0, 1e-9);
}

TEST(ClusterSimulatorTest, FullParallelismBoundsRuntimeByStageDuration) {
  ClusterSimulator sim;
  JobPlan plan = SingleStagePlan(10, 3.0);
  Result<RunResult> result = sim.Run(plan, RunConfig{10.0, {}, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().runtime_seconds, 3.0);
  EXPECT_DOUBLE_EQ(result.value().peak_tokens_used, 10.0);
}

TEST(ClusterSimulatorTest, PartialParallelismWaves) {
  // 10 tasks on 4 tokens: ceil(10/4) = 3 waves of 3 seconds.
  ClusterSimulator sim;
  JobPlan plan = SingleStagePlan(10, 3.0);
  Result<RunResult> result = sim.Run(plan, RunConfig{4.0, {}, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().runtime_seconds, 9.0);
}

TEST(ClusterSimulatorTest, StageBarrierIsRespected) {
  // Stage 1 cannot overlap stage 0, so runtime is the sum even with ample
  // tokens.
  ClusterSimulator sim;
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, 8, 5.0});
  plan.stages.push_back(StageSpec{1, {0}, 8, 7.0});
  Result<RunResult> result = sim.Run(plan, RunConfig{100.0, {}, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().runtime_seconds, 12.0);
}

TEST(ClusterSimulatorTest, IndependentStagesOverlap) {
  ClusterSimulator sim;
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, 4, 10.0});
  plan.stages.push_back(StageSpec{1, {}, 4, 10.0});
  Result<RunResult> result = sim.Run(plan, RunConfig{8.0, {}, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().runtime_seconds, 10.0);
  EXPECT_DOUBLE_EQ(result.value().peak_tokens_used, 8.0);
}

TEST(ClusterSimulatorTest, SkylineAreaEqualsWorkWithoutNoise) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  for (double tokens : {1.0, 3.0, 7.0, 20.0, 40.0, 100.0}) {
    Result<RunResult> result = sim.Run(plan, RunConfig{tokens, {}, 0});
    ASSERT_TRUE(result.ok());
    EXPECT_NEAR(result.value().skyline.Area(), plan.TotalWorkTokenSeconds(),
                1e-6)
        << "tokens=" << tokens;
  }
}

TEST(ClusterSimulatorTest, SkylineNeverExceedsAllocation) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  Result<RunResult> result = sim.Run(plan, RunConfig{13.0, {}, 0});
  ASSERT_TRUE(result.ok());
  for (double v : result.value().skyline.values()) {
    EXPECT_LE(v, 13.0 + 1e-9);
  }
}

TEST(ClusterSimulatorTest, RuntimeNonIncreasingInTokens) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  double previous = 1e18;
  for (double tokens = 1.0; tokens <= 45.0; tokens += 1.0) {
    Result<RunResult> result = sim.Run(plan, RunConfig{tokens, {}, 0});
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().runtime_seconds, previous + 1e-9);
    previous = result.value().runtime_seconds;
  }
}

TEST(ClusterSimulatorTest, RuntimeBoundedBelowByCriticalPath) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  Result<RunResult> result = sim.Run(plan, RunConfig{10000.0, {}, 0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().runtime_seconds, plan.CriticalPathSeconds(),
              1e-9);
}

TEST(ClusterSimulatorTest, DeterministicWithoutNoise) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  auto a = sim.Run(plan, RunConfig{9.0, {}, 1});
  auto b = sim.Run(plan, RunConfig{9.0, {}, 2});  // Seed ignored, no noise.
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().skyline, b.value().skyline);
}

TEST(ClusterSimulatorTest, NoiseSeedChangesRun) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  NoiseModel noise;
  noise.enabled = true;
  auto a = sim.Run(plan, RunConfig{9.0, noise, 1});
  auto b = sim.Run(plan, RunConfig{9.0, noise, 2});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().runtime_seconds, b.value().runtime_seconds);
  // Same seed reproduces exactly.
  auto a2 = sim.Run(plan, RunConfig{9.0, noise, 1});
  EXPECT_EQ(a.value().skyline, a2.value().skyline);
}

TEST(ClusterSimulatorTest, NoiseKeepsAreaRoughlyConstant) {
  // The AREPAS assumption under realistic noise: areas of the same job at
  // different allocations stay within a modest tolerance.
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  NoiseModel noise;
  noise.enabled = true;
  noise.usage_outlier_probability = 0.0;  // Outliers tested separately.
  double base = plan.TotalWorkTokenSeconds();
  for (double tokens : {5.0, 10.0, 20.0, 40.0}) {
    auto result = sim.Run(plan, RunConfig{tokens, noise, 3});
    ASSERT_TRUE(result.ok());
    double area = result.value().skyline.Area();
    EXPECT_GT(area, base * 0.7);
    EXPECT_LT(area, base * 1.5);
  }
}

TEST(ClusterSimulatorTest, UsageNoiseScalesAreaNotRuntime) {
  // The usage-accounting noise must change the recorded skyline without
  // moving the makespan.
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  NoiseModel quiet;  // Everything off except usage noise.
  quiet.enabled = true;
  quiet.duration_jitter_sigma = 0.0;
  quiet.straggler_probability = 0.0;
  quiet.failure_probability = 0.0;
  quiet.usage_scale_sigma = 0.2;
  quiet.usage_outlier_probability = 0.0;
  auto noisy = sim.Run(plan, RunConfig{9.0, quiet, 5});
  NoiseModel off;
  auto clean = sim.Run(plan, RunConfig{9.0, off, 5});
  ASSERT_TRUE(noisy.ok());
  ASSERT_TRUE(clean.ok());
  EXPECT_DOUBLE_EQ(noisy.value().runtime_seconds,
                   clean.value().runtime_seconds);
  double ratio = noisy.value().skyline.Area() / clean.value().skyline.Area();
  EXPECT_NE(ratio, 1.0);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.6);
}

TEST(ClusterSimulatorTest, UsageOutliersCanExceedAllocation) {
  // Filter (2) of the flighting protocol exists because errant jobs record
  // more usage than allocated; the outlier mode reproduces that.
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  NoiseModel noise;
  noise.enabled = true;
  noise.usage_outlier_probability = 1.0;
  auto result = sim.Run(plan, RunConfig{9.0, noise, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().skyline.Peak(), 9.0);
}

TEST(ClusterSimulatorTest, RejectsInvalidConfig) {
  ClusterSimulator sim;
  JobPlan plan = ChainPlan();
  EXPECT_FALSE(sim.Run(plan, RunConfig{0.5, {}, 0}).ok());
  EXPECT_FALSE(sim.Run(JobPlan{}, RunConfig{4.0, {}, 0}).ok());
}

TEST(ClusterSimulatorTest, GroundTruthPccIsPowerLawShaped) {
  // The simulator must produce the diminishing-returns curve the paper
  // models: a power-law fit in log-log space should be decreasing and
  // explain most of the variance (Figure 3 / Figure 9).
  ClusterSimulator sim;
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, 64, 12.0});
  plan.stages.push_back(StageSpec{1, {0}, 16, 8.0});
  plan.stages.push_back(StageSpec{2, {1}, 32, 6.0});
  std::vector<PccSample> samples;
  for (double tokens = 2.0; tokens <= 64.0; tokens *= 2.0) {
    auto result = sim.Run(plan, RunConfig{tokens, {}, 0});
    ASSERT_TRUE(result.ok());
    samples.push_back({tokens, result.value().runtime_seconds});
  }
  Result<PowerLawFit> fit = FitPowerLaw(samples);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit.value().pcc.a, -0.3);
  EXPECT_GT(fit.value().log_log_r2, 0.9);
}

TEST(ClusterSimulatorTest, FractionalTokensAreFloored) {
  ClusterSimulator sim;
  JobPlan plan = SingleStagePlan(10, 3.0);
  auto frac = sim.Run(plan, RunConfig{4.9, {}, 0});
  auto whole = sim.Run(plan, RunConfig{4.0, {}, 0});
  ASSERT_TRUE(frac.ok());
  ASSERT_TRUE(whole.ok());
  EXPECT_DOUBLE_EQ(frac.value().runtime_seconds,
                   whole.value().runtime_seconds);
}

}  // namespace
}  // namespace tasq
