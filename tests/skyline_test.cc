#include <gtest/gtest.h>

#include "skyline/skyline.h"

namespace tasq {
namespace {

TEST(SkylineTest, BasicProperties) {
  Skyline s({2.0, 4.0, 6.0, 4.0});
  EXPECT_EQ(s.duration_seconds(), 4u);
  EXPECT_DOUBLE_EQ(s.Area(), 16.0);
  EXPECT_DOUBLE_EQ(s.Peak(), 6.0);
  EXPECT_DOUBLE_EQ(s.MeanUsage(), 4.0);
  EXPECT_DOUBLE_EQ(s.UsageAt(2), 6.0);
  EXPECT_DOUBLE_EQ(s.UsageAt(99), 0.0);
}

TEST(SkylineTest, EmptySkyline) {
  Skyline s;
  EXPECT_EQ(s.duration_seconds(), 0u);
  EXPECT_DOUBLE_EQ(s.Area(), 0.0);
  EXPECT_DOUBLE_EQ(s.Peak(), 0.0);
  EXPECT_DOUBLE_EQ(s.MeanUsage(), 0.0);
}

TEST(SkylineTest, NegativeSamplesClampToZero) {
  Skyline s({-1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.UsageAt(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Area(), 3.0);
}

TEST(SkylineTest, TrimmedTrailingZeros) {
  Skyline s({1.0, 2.0, 0.0, 0.0});
  Skyline trimmed = s.TrimmedTrailingZeros();
  EXPECT_EQ(trimmed.duration_seconds(), 2u);
  EXPECT_DOUBLE_EQ(trimmed.Area(), 3.0);
  // Interior zeros stay.
  Skyline mid({1.0, 0.0, 2.0});
  EXPECT_EQ(mid.TrimmedTrailingZeros().duration_seconds(), 3u);
}

TEST(SplitSectionsTest, AlternatingSections) {
  // Usage: 5 5 1 1 6 relative to threshold 3.
  Skyline s({5.0, 5.0, 1.0, 1.0, 6.0});
  auto sections = SplitSections(s, 3.0);
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_TRUE(sections[0].over_threshold);
  EXPECT_EQ(sections[0].start, 0u);
  EXPECT_EQ(sections[0].end, 2u);
  EXPECT_FALSE(sections[1].over_threshold);
  EXPECT_EQ(sections[1].length(), 2u);
  EXPECT_TRUE(sections[2].over_threshold);
  EXPECT_EQ(sections[2].end, 5u);
}

TEST(SplitSectionsTest, ExactlyAtThresholdCountsAsUnder) {
  Skyline s({3.0, 3.0, 4.0});
  auto sections = SplitSections(s, 3.0);
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_FALSE(sections[0].over_threshold);
  EXPECT_TRUE(sections[1].over_threshold);
}

TEST(SplitSectionsTest, SectionsCoverSkylineExactly) {
  Skyline s({1.0, 9.0, 2.0, 8.0, 8.0, 1.0});
  auto sections = SplitSections(s, 5.0);
  size_t covered = 0;
  size_t expected_start = 0;
  for (const auto& sec : sections) {
    EXPECT_EQ(sec.start, expected_start);
    covered += sec.length();
    expected_start = sec.end;
  }
  EXPECT_EQ(covered, s.duration_seconds());
}

TEST(SplitSectionsTest, EmptySkylineYieldsNoSections) {
  EXPECT_TRUE(SplitSections(Skyline(), 1.0).empty());
}

TEST(UtilizationTest, ClassifiesBandsRelativeToPeak) {
  // Peak 100: <20 minimum, <50 low, >=50 high.
  Skyline s({10.0, 30.0, 60.0, 100.0});
  UtilizationSummary summary = ClassifyUtilization(s);
  EXPECT_DOUBLE_EQ(summary.seconds_minimum, 1.0);
  EXPECT_DOUBLE_EQ(summary.seconds_low, 1.0);
  EXPECT_DOUBLE_EQ(summary.seconds_high, 2.0);
  EXPECT_DOUBLE_EQ(summary.total(), 4.0);
}

TEST(UtilizationTest, AllZeroSkylineIsAllMinimum) {
  Skyline s({0.0, 0.0});
  UtilizationSummary summary = ClassifyUtilization(s);
  EXPECT_DOUBLE_EQ(summary.seconds_minimum, 2.0);
  EXPECT_DOUBLE_EQ(summary.seconds_high, 0.0);
}

TEST(AllocationPolicyTest, DefaultPolicyIsFlatAtRequest) {
  Skyline s({10.0, 50.0, 20.0});
  auto alloc = AllocationSeries(s, AllocationPolicy::kDefault, 125.0);
  ASSERT_EQ(alloc.size(), 3u);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 125.0);
}

TEST(AllocationPolicyTest, DefaultBelowPeakIsRaisedToPeak) {
  Skyline s({10.0, 50.0, 20.0});
  auto alloc = AllocationSeries(s, AllocationPolicy::kDefault, 30.0);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 50.0);
}

TEST(AllocationPolicyTest, PeakPolicy) {
  Skyline s({10.0, 50.0, 20.0});
  auto alloc = AllocationSeries(s, AllocationPolicy::kPeak);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 50.0);
}

TEST(AllocationPolicyTest, AdaptivePeakIsSuffixMaximum) {
  Skyline s({10.0, 50.0, 20.0, 30.0, 5.0});
  auto alloc = AllocationSeries(s, AllocationPolicy::kAdaptivePeak);
  std::vector<double> expected = {50.0, 50.0, 30.0, 30.0, 5.0};
  EXPECT_EQ(alloc, expected);
}

TEST(AllocationPolicyTest, AdaptiveNeverBelowUsageAndBelowPeak) {
  Skyline s({5.0, 80.0, 10.0, 40.0, 2.0});
  auto adaptive = AllocationSeries(s, AllocationPolicy::kAdaptivePeak);
  auto peak = AllocationSeries(s, AllocationPolicy::kPeak);
  for (size_t t = 0; t < s.duration_seconds(); ++t) {
    EXPECT_GE(adaptive[t], s.UsageAt(t));
    EXPECT_LE(adaptive[t], peak[t]);
  }
}

TEST(OverAllocationTest, ComputesWaste) {
  Skyline s({10.0, 50.0, 20.0});
  auto alloc = AllocationSeries(s, AllocationPolicy::kPeak);
  Result<double> waste = OverAllocation(s, alloc);
  ASSERT_TRUE(waste.ok());
  EXPECT_DOUBLE_EQ(waste.value(), (50 - 10) + (50 - 50) + (50 - 20));
}

TEST(OverAllocationTest, PolicyOrderingHolds) {
  // Waste(default >= peak >= adaptive) for any skyline.
  Skyline s({3.0, 9.0, 1.0, 7.0, 2.0});
  double d = OverAllocation(s, AllocationSeries(s, AllocationPolicy::kDefault,
                                                20.0))
                 .value();
  double p =
      OverAllocation(s, AllocationSeries(s, AllocationPolicy::kPeak)).value();
  double a =
      OverAllocation(s, AllocationSeries(s, AllocationPolicy::kAdaptivePeak))
          .value();
  EXPECT_GE(d, p);
  EXPECT_GE(p, a);
}

TEST(OverAllocationTest, RejectsStarvingAllocation) {
  Skyline s({10.0, 20.0});
  std::vector<double> alloc = {10.0, 5.0};
  EXPECT_FALSE(OverAllocation(s, alloc).ok());
}

TEST(OverAllocationTest, RejectsShortSeries) {
  Skyline s({10.0, 20.0});
  EXPECT_FALSE(OverAllocation(s, {30.0}).ok());
}

}  // namespace
}  // namespace tasq
