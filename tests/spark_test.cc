#include <gtest/gtest.h>

#include <cmath>

#include "spark/autoexecutor.h"
#include "workload/generator.h"

namespace tasq {
namespace {

JobPlan WidePlan() {
  JobPlan plan;
  plan.stages.push_back(StageSpec{0, {}, 64, 10.0});
  plan.stages.push_back(StageSpec{1, {0}, 16, 8.0});
  return plan;
}

TEST(RunOnExecutorsTest, SkylineMeasuredInExecutorUnits) {
  SparkPlatformConfig platform;
  platform.cores_per_executor = 4;
  Result<ExecutorRunResult> run = RunOnExecutors(WidePlan(), 8, platform);
  ASSERT_TRUE(run.ok());
  // 8 executors x 4 cores = 32 slots; 64 tasks of 10s -> two waves, then
  // 16 tasks in one wave of 8s.
  EXPECT_DOUBLE_EQ(run.value().runtime_seconds, 28.0);
  EXPECT_LE(run.value().executor_skyline.Peak(), 8.0 + 1e-9);
  EXPECT_NEAR(run.value().peak_executors_used, 8.0, 1e-9);
  // Area in executor-seconds = work / cores.
  EXPECT_NEAR(run.value().executor_skyline.Area(),
              WidePlan().TotalWorkTokenSeconds() / 4.0, 1e-6);
}

TEST(RunOnExecutorsTest, MoreExecutorsNeverSlower) {
  SparkPlatformConfig platform;
  double previous = 1e300;
  for (int executors = 1; executors <= 32; executors *= 2) {
    Result<ExecutorRunResult> run =
        RunOnExecutors(WidePlan(), executors, platform);
    ASSERT_TRUE(run.ok());
    EXPECT_LE(run.value().runtime_seconds, previous + 1e-9);
    previous = run.value().runtime_seconds;
  }
}

TEST(RunOnExecutorsTest, RejectsInvalidArguments) {
  SparkPlatformConfig platform;
  EXPECT_FALSE(RunOnExecutors(WidePlan(), 0, platform).ok());
  platform.cores_per_executor = 0;
  EXPECT_FALSE(RunOnExecutors(WidePlan(), 4, platform).ok());
}

TEST(AutoExecutorTest, TrainsAndRecommendsWithinBounds) {
  WorkloadConfig config;
  config.seed = 31;
  WorkloadGenerator generator(config);
  AutoExecutorOptions options;
  options.nn.epochs = 40;
  AutoExecutor auto_executor(options);
  ASSERT_TRUE(auto_executor.Train(generator.Generate(0, 120)).ok());
  EXPECT_TRUE(auto_executor.trained());

  for (const Job& job : generator.Generate(500, 30)) {
    Result<PowerLawPcc> pcc = auto_executor.PredictPcc(job.graph);
    ASSERT_TRUE(pcc.ok());
    EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
    Result<int> executors =
        auto_executor.RecommendExecutors(job.graph, 64, 1.0);
    ASSERT_TRUE(executors.ok());
    EXPECT_GE(executors.value(), 1);
    EXPECT_LE(executors.value(), 64);
  }
}

TEST(AutoExecutorTest, RecommendationRespectsPlatformCap) {
  WorkloadConfig config;
  config.seed = 32;
  WorkloadGenerator generator(config);
  AutoExecutorOptions options;
  options.nn.epochs = 5;
  options.platform.max_executors = 16;
  AutoExecutor auto_executor(options);
  ASSERT_TRUE(auto_executor.Train(generator.Generate(0, 40)).ok());
  Job job = generator.GenerateJob(999);
  Result<int> executors =
      auto_executor.RecommendExecutors(job.graph, 1000, 0.01);
  ASSERT_TRUE(executors.ok());
  EXPECT_LE(executors.value(), 16);
}

TEST(AutoExecutorTest, FailsCleanlyBeforeTrainingAndOnBadInput) {
  AutoExecutor auto_executor;
  JobGraph graph;
  EXPECT_FALSE(auto_executor.PredictPcc(graph).ok());
  EXPECT_FALSE(auto_executor.Train({}).ok());
  AutoExecutorOptions lf3;
  lf3.nn.loss_form = LossForm::kLF3;
  AutoExecutor bad(lf3);
  WorkloadGenerator generator(WorkloadConfig{});
  EXPECT_FALSE(bad.Train(generator.Generate(0, 5)).ok());
}

TEST(AutoExecutorTest, PredictionsTrackExecutorGroundTruth) {
  // The adapter must learn the executor-PCC well enough that median error
  // against a ground-truth executor sweep is bounded.
  WorkloadConfig config;
  config.seed = 33;
  WorkloadGenerator generator(config);
  AutoExecutorOptions options;
  options.nn.epochs = 80;
  options.nn.learning_rate = 2e-3;
  AutoExecutor auto_executor(options);
  ASSERT_TRUE(auto_executor.Train(generator.Generate(0, 200)).ok());

  std::vector<double> errors;
  for (const Job& job : generator.Generate(800, 25)) {
    Result<PowerLawPcc> pcc = auto_executor.PredictPcc(job.graph);
    ASSERT_TRUE(pcc.ok());
    int executors = std::max(
        1, static_cast<int>(std::ceil(job.default_tokens / 4.0)));
    Result<ExecutorRunResult> truth =
        RunOnExecutors(job.plan, executors, options.platform);
    ASSERT_TRUE(truth.ok());
    double predicted = pcc.value().EvalRunTime(executors);
    errors.push_back(std::fabs(predicted - truth.value().runtime_seconds) /
                     truth.value().runtime_seconds * 100.0);
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], 60.0);
}

}  // namespace
}  // namespace tasq
