// Stress and semantics tests for the lock-free primitives in
// src/common/sync/: Snapshot<T> publication and the bounded MPSC ring.
//
// Every suite name starts with `Sync` on purpose: the TSan leg of
// scripts/check.sh (and the ci.yml tsan job — PR 3 taught us the two
// regexes drift unless both are updated) selects these suites by that
// prefix, so the publish/pin protocol and the ring hand-off are
// exercised under the race detector on every CI run, not just when the
// whole suite happens to run instrumented.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync/mpsc_queue.h"
#include "common/sync/pause.h"
#include "common/sync/snapshot.h"
#include "gtest/gtest.h"

namespace tasq {
namespace {

// A value whose invariant a torn read would break: `a` and `b` must
// always agree (b == a * 3 + 7). Publishers only ever publish consistent
// pairs, so any reader observing a mismatch has seen a torn snapshot.
struct Pair {
  uint64_t a = 0;
  uint64_t b = 7;

  bool Consistent() const { return b == a * 3 + 7; }
};

TEST(SyncSnapshotTest, ReadSeesInitialValue) {
  Snapshot<Pair> snapshot;
  auto view = snapshot.Read();
  EXPECT_EQ(view->a, 0u);
  EXPECT_TRUE(view->Consistent());
}

TEST(SyncSnapshotTest, PublishReplacesValueForLaterReaders) {
  Snapshot<int> snapshot(std::make_shared<const int>(1));
  snapshot.Publish(std::make_shared<const int>(2));
  EXPECT_EQ(*snapshot.Read(), 2);
  snapshot.Update([](int& value) { value += 40; });
  EXPECT_EQ(*snapshot.Read(), 42);
}

TEST(SyncSnapshotTest, ReadOwnedOutlivesSubsequentPublishes) {
  Snapshot<int> snapshot(std::make_shared<const int>(10));
  std::shared_ptr<const int> owned = snapshot.ReadOwned();
  for (int i = 0; i < 8; ++i) {
    snapshot.Publish(std::make_shared<const int>(100 + i));
  }
  EXPECT_EQ(*owned, 10);        // The pinned-then-copied version survives.
  EXPECT_EQ(*snapshot.Read(), 107);
}

TEST(SyncSnapshotTest, PublishReclaimsTheReplacedVersion) {
  auto first = std::make_shared<const int>(1);
  std::weak_ptr<const int> first_alive = first;
  Snapshot<int> snapshot(std::move(first));
  ASSERT_FALSE(first_alive.expired());

  snapshot.Publish(std::make_shared<const int>(2));
  // No reader pinned version 1 and no ReadOwned copy exists, so Publish
  // must have dropped the last reference before returning.
  EXPECT_TRUE(first_alive.expired());

  // With a ReadOwned copy outstanding, the version survives the publish
  // and dies exactly when the copy does.
  std::shared_ptr<const int> held = snapshot.ReadOwned();
  std::weak_ptr<const int> second_alive = held;
  snapshot.Publish(std::make_shared<const int>(3));
  EXPECT_FALSE(second_alive.expired());
  held.reset();
  EXPECT_TRUE(second_alive.expired());
}

// The core TSan target: many readers hammering Read() while one writer
// publishes new versions. A torn snapshot (reader observing a half-
// updated Pair), a use-after-reclaim (reader dereferencing a version the
// writer dropped), or a missed pin (writer reclaiming under a reader)
// all either fail the consistency EXPECT or trip the race detector.
TEST(SyncSnapshotTest, ConcurrentPublishAndManyReadersStayConsistent) {
  Snapshot<Pair> snapshot;
  constexpr int kReaders = 4;
  constexpr int kPublishes = 400;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&snapshot, &stop, &reads] {
      // Relaxed: the stop flag only ends the loop; thread join publishes
      // everything the readers did.
      while (!stop.load(std::memory_order_relaxed)) {
        auto view = snapshot.Read();
        ASSERT_TRUE(view->Consistent())
            << "torn snapshot: a=" << view->a << " b=" << view->b;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Without this gate the publishes can all finish before the reader
  // threads are even scheduled, making the reads>0 assertion below flaky.
  while (reads.load(std::memory_order_relaxed) <
         static_cast<uint64_t>(kReaders)) {
    std::this_thread::yield();
  }

  for (uint64_t i = 1; i <= kPublishes; ++i) {
    auto next = std::make_shared<Pair>();
    next->a = i;
    next->b = i * 3 + 7;
    snapshot.Publish(std::shared_ptr<const Pair>(std::move(next)));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(snapshot.Read()->a, static_cast<uint64_t>(kPublishes));
}

TEST(SyncSnapshotTest, ConcurrentUpdatesFromManyWritersAllLand) {
  // Update serializes writers on the internal mutex, so no increment may
  // be lost even when writers race.
  Snapshot<int> snapshot(std::make_shared<const int>(0));
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&snapshot] {
      for (int i = 0; i < kPerWriter; ++i) {
        snapshot.Update([](int& value) { ++value; });
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(*snapshot.Read(), kWriters * kPerWriter);
}

TEST(SyncMpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscQueue<int>(1024).capacity(), 1024u);
  EXPECT_EQ(MpscQueue<int>(1025).capacity(), 2048u);
}

TEST(SyncMpscQueueTest, FifoWithinASingleProducer) {
  MpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPush(i));
  }
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(SyncMpscQueueTest, FullRingRejectsUntilConsumed) {
  MpscQueue<int> queue(4);
  ASSERT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.TryPush(i));
  }
  EXPECT_FALSE(queue.TryPush(99));  // Full: bounded, never reallocates.
  int out = -1;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.TryPush(99));   // Freed slot is reusable (lap wrap).
  for (int expected : {1, 2, 3, 99}) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, expected);
  }
}

// The TSan target for the ring: several producers race TryPush while the
// single consumer drains. Every pushed value must arrive exactly once
// (no losses from CAS races, no duplicates from seq mismanagement), and
// per-producer FIFO order must hold.
TEST(SyncMpscQueueTest, ManyProducersOneConsumerDeliverExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscQueue<uint64_t> queue(256);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Encode producer id and sequence so the consumer can check
        // exactly-once delivery and per-producer order.
        uint64_t token = (static_cast<uint64_t>(p) << 32) |
                         static_cast<uint64_t>(i);
        while (!queue.TryPush(token)) {
          CpuRelax();  // Ring full: wait for the consumer.
        }
      }
    });
  }

  std::vector<std::vector<uint64_t>> seen(kProducers);
  uint64_t token = 0;
  for (int received = 0; received < kProducers * kPerProducer;) {
    if (queue.TryPop(&token)) {
      seen[token >> 32].push_back(token & 0xFFFFFFFFu);
      ++received;
    } else {
      CpuRelax();  // Ring momentarily empty: producers still pushing.
    }
  }
  for (std::thread& t : producers) t.join();

  int out_of_order = 0;
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seen[p].size(), static_cast<size_t>(kPerProducer))
        << "producer " << p << " lost or duplicated elements";
    for (int i = 0; i < kPerProducer; ++i) {
      if (seen[p][static_cast<size_t>(i)] != static_cast<uint64_t>(i)) {
        ++out_of_order;
      }
    }
  }
  EXPECT_EQ(out_of_order, 0) << "per-producer FIFO order violated";
  EXPECT_FALSE(queue.TryPop(&token)) << "stray element after drain";
}

TEST(SyncMpscQueueTest, MovableElementsTransferOwnership) {
  MpscQueue<std::unique_ptr<int>> queue(4);
  ASSERT_TRUE(queue.TryPush(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 41);
  // The vacated slot holds a moved-from (null) pointer, not a copy.
  EXPECT_FALSE(queue.TryPop(&out));
}

}  // namespace
}  // namespace tasq
