#include <gtest/gtest.h>

#include <cmath>

#include "tasq/dataset.h"
#include "tasq/evaluation.h"
#include "tasq/tasq.h"
#include "workload/generator.h"

namespace tasq {
namespace {

// Shared small workload so the expensive observation/training happens once.
class TasqFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 11;
    WorkloadGenerator generator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto train_jobs = generator.Generate(0, 300);
    auto test_jobs = generator.Generate(300, 60);
    train_observed_ = new std::vector<ObservedJob>(
        ObserveWorkload(train_jobs, noise, 1).value());
    test_observed_ = new std::vector<ObservedJob>(
        ObserveWorkload(test_jobs, noise, 2).value());

    TasqOptions options;
    options.nn.epochs = 60;
    options.gnn.epochs = 8;
    options.gnn.gcn_hidden = {16, 8};
    options.gnn.head_hidden = {8};
    options.xgb.gbdt.num_trees = 60;
    pipeline_ = new Tasq(options);
    ASSERT_TRUE(pipeline_->Train(*train_observed_).ok());

    DatasetBuilder builder;
    test_dataset_ = new Dataset(builder.Build(*test_observed_).value());
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete train_observed_;
    delete test_observed_;
    delete test_dataset_;
    pipeline_ = nullptr;
    train_observed_ = nullptr;
    test_observed_ = nullptr;
    test_dataset_ = nullptr;
  }

  static Tasq* pipeline_;
  static std::vector<ObservedJob>* train_observed_;
  static std::vector<ObservedJob>* test_observed_;
  static Dataset* test_dataset_;
};

Tasq* TasqFixture::pipeline_ = nullptr;
std::vector<ObservedJob>* TasqFixture::train_observed_ = nullptr;
std::vector<ObservedJob>* TasqFixture::test_observed_ = nullptr;
Dataset* TasqFixture::test_dataset_ = nullptr;

TEST(ObserveWorkloadTest, ProducesConsistentTelemetry) {
  WorkloadGenerator generator(WorkloadConfig{});
  auto jobs = generator.Generate(0, 10);
  Result<std::vector<ObservedJob>> observed =
      ObserveWorkload(jobs, NoiseModel{}, 5);
  ASSERT_TRUE(observed.ok());
  ASSERT_EQ(observed.value().size(), 10u);
  for (const ObservedJob& entry : observed.value()) {
    EXPECT_GT(entry.runtime_seconds, 0.0);
    EXPECT_GE(entry.observed_tokens, entry.peak_tokens);
    EXPECT_GT(entry.skyline.Area(), 0.0);
    // Without noise, the skyline area equals the plan work.
    EXPECT_NEAR(entry.skyline.Area(), entry.job.plan.TotalWorkTokenSeconds(),
                1e-6);
  }
}

TEST(DatasetBuilderTest, BuildsTargetsAndAugmentedPoints) {
  WorkloadGenerator generator(WorkloadConfig{});
  auto jobs = generator.Generate(0, 20);
  auto observed = ObserveWorkload(jobs, NoiseModel{}, 3).value();
  DatasetBuilder builder;
  Result<Dataset> dataset = builder.Build(observed);
  ASSERT_TRUE(dataset.ok());
  const Dataset& d = dataset.value();
  EXPECT_EQ(d.size(), 20u);
  // 3 point fractions + 2 over-peak fractions per job.
  EXPECT_EQ(d.point_size(), 20u * 5u);
  for (const PowerLawPcc& target : d.targets) {
    EXPECT_TRUE(target.IsMonotoneNonIncreasing());
    EXPECT_GT(target.b, 0.0);
  }
  for (double runtime : d.point_runtimes) EXPECT_GT(runtime, 0.0);
  // Most jobs should have a genuinely decreasing target (the workload has
  // parallelism to trade).
  size_t decreasing = 0;
  for (const PowerLawPcc& target : d.targets) {
    if (target.a < -0.05) ++decreasing;
  }
  EXPECT_GT(decreasing, 10u);
}

TEST(DatasetBuilderTest, RejectsEmptyInput) {
  DatasetBuilder builder;
  EXPECT_FALSE(builder.Build({}).ok());
}

TEST(DatasetScalersTest, StandardizeRoundTrip) {
  WorkloadGenerator generator(WorkloadConfig{});
  auto observed =
      ObserveWorkload(generator.Generate(0, 15), NoiseModel{}, 3).value();
  Dataset dataset = DatasetBuilder().Build(observed).value();
  Result<DatasetScalers> scalers = FitScalers(dataset);
  ASSERT_TRUE(scalers.ok());
  ApplyScalers(scalers.value(), dataset);
  // Columns with variance should now be ~zero-mean over jobs.
  double mean0 = 0.0;
  for (size_t i = 0; i < dataset.size(); ++i) {
    mean0 += dataset.job_features[i * dataset.job_feature_dim];
  }
  mean0 /= static_cast<double>(dataset.size());
  EXPECT_NEAR(mean0, 0.0, 1e-9);
}

TEST_F(TasqFixture, AllModelsTrainAndPredict) {
  EXPECT_TRUE(pipeline_->trained());
  const JobGraph& graph = (*test_observed_)[0].job.graph;
  double reference = (*test_observed_)[0].observed_tokens;
  for (ModelKind kind :
       {ModelKind::kXgboostPl, ModelKind::kNn, ModelKind::kGnn}) {
    Result<PowerLawPcc> pcc = pipeline_->PredictPcc(graph, kind, reference);
    ASSERT_TRUE(pcc.ok()) << ModelKindName(kind);
    EXPECT_GT(pcc.value().b, 0.0);
  }
  // XGBoost SS exposes curves, not parameters.
  EXPECT_FALSE(
      pipeline_->PredictPcc(graph, ModelKind::kXgboostSs, reference).ok());
  Result<std::vector<PccSample>> curve = pipeline_->PredictCurve(
      graph, ModelKind::kXgboostSs, reference, {reference * 0.8, reference});
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve.value().size(), 2u);
}

TEST_F(TasqFixture, NnAndGnnAlwaysMonotoneOnTestSet) {
  for (const ObservedJob& entry : *test_observed_) {
    for (ModelKind kind : {ModelKind::kNn, ModelKind::kGnn}) {
      Result<PowerLawPcc> pcc = pipeline_->PredictPcc(
          entry.job.graph, kind, entry.observed_tokens);
      ASSERT_TRUE(pcc.ok());
      EXPECT_TRUE(pcc.value().IsMonotoneNonIncreasing());
    }
  }
}

TEST_F(TasqFixture, RuntimePredictionsAreUseful) {
  // The run-time prediction should carry real signal: across test jobs the
  // predictions must correlate with truth and have bounded median error.
  for (ModelKind kind : {ModelKind::kXgboostPl, ModelKind::kNn}) {
    Result<ModelEvalMetrics> metrics =
        EvaluateModel(*pipeline_, kind, *test_dataset_);
    ASSERT_TRUE(metrics.ok()) << ModelKindName(kind);
    EXPECT_LT(metrics.value().median_ae_runtime_percent, 80.0)
        << ModelKindName(kind);
    EXPECT_EQ(metrics.value().jobs, test_dataset_->size());
  }
}

TEST_F(TasqFixture, EvaluationMetricsShapeMatchesPaper) {
  Result<ModelEvalMetrics> ss =
      EvaluateModel(*pipeline_, ModelKind::kXgboostSs, *test_dataset_);
  Result<ModelEvalMetrics> pl =
      EvaluateModel(*pipeline_, ModelKind::kXgboostPl, *test_dataset_);
  Result<ModelEvalMetrics> nn =
      EvaluateModel(*pipeline_, ModelKind::kNn, *test_dataset_);
  Result<ModelEvalMetrics> gnn =
      EvaluateModel(*pipeline_, ModelKind::kGnn, *test_dataset_);
  ASSERT_TRUE(ss.ok());
  ASSERT_TRUE(pl.ok());
  ASSERT_TRUE(nn.ok());
  ASSERT_TRUE(gnn.ok());
  // NN/GNN guarantee the pattern; XGBoost cannot.
  EXPECT_DOUBLE_EQ(nn.value().pattern_nonincrease_percent, 100.0);
  EXPECT_DOUBLE_EQ(gnn.value().pattern_nonincrease_percent, 100.0);
  EXPECT_FALSE(ss.value().has_curve_params());
  EXPECT_TRUE(pl.value().has_curve_params());
  EXPECT_TRUE(nn.value().has_curve_params());
}

TEST_F(TasqFixture, RecommendationsSaveTokensWithBoundedSlowdown) {
  size_t saving_jobs = 0;
  for (const ObservedJob& entry : *test_observed_) {
    // A 2%-per-token diminishing-returns bar; stricter bars keep more jobs
    // at their reference allocation (the threshold is user policy).
    Result<TokenRecommendation> recommendation = pipeline_->RecommendTokens(
        entry.job.graph, ModelKind::kNn, entry.observed_tokens, 2.0);
    ASSERT_TRUE(recommendation.ok());
    EXPECT_GE(recommendation.value().tokens, 1.0);
    EXPECT_LE(recommendation.value().tokens, entry.observed_tokens);
    EXPECT_GE(recommendation.value().predicted_slowdown, -1e-9);
    if (recommendation.value().tokens < entry.observed_tokens) ++saving_jobs;
  }
  // The paper found most jobs can request fewer tokens.
  EXPECT_GT(saving_jobs, test_observed_->size() / 2);
}

TEST_F(TasqFixture, SlowdownBoundCapsRecommendationImpact) {
  for (const ObservedJob& entry : *test_observed_) {
    Result<TokenRecommendation> bounded = pipeline_->RecommendTokens(
        entry.job.graph, ModelKind::kNn, entry.observed_tokens, 1.0,
        /*max_slowdown_fraction=*/0.10);
    ASSERT_TRUE(bounded.ok());
    EXPECT_LE(bounded.value().predicted_slowdown, 0.10 + 0.02);
    // The bounded recommendation never requests fewer tokens than the
    // unbounded one.
    Result<TokenRecommendation> unbounded = pipeline_->RecommendTokens(
        entry.job.graph, ModelKind::kNn, entry.observed_tokens, 1.0);
    ASSERT_TRUE(unbounded.ok());
    EXPECT_GE(bounded.value().tokens + 1e-9, unbounded.value().tokens);
  }
}

TEST_F(TasqFixture, XgboostSsSlowdownBoundHolds) {
  const ObservedJob& entry = (*test_observed_)[4];
  Result<TokenRecommendation> bounded = pipeline_->RecommendTokens(
      entry.job.graph, ModelKind::kXgboostSs, entry.observed_tokens, 1.0,
      0.15);
  ASSERT_TRUE(bounded.ok());
  EXPECT_LE(bounded.value().predicted_slowdown, 0.15 + 0.02);
}

TEST_F(TasqFixture, XgboostSsRecommendationUsesSampledCurve) {
  const ObservedJob& entry = (*test_observed_)[2];
  Result<TokenRecommendation> recommendation = pipeline_->RecommendTokens(
      entry.job.graph, ModelKind::kXgboostSs, entry.observed_tokens, 1.0);
  ASSERT_TRUE(recommendation.ok()) << recommendation.status().ToString();
  EXPECT_GE(recommendation.value().tokens, 1.0);
  EXPECT_LE(recommendation.value().tokens, entry.observed_tokens);
  EXPECT_GT(recommendation.value().predicted_runtime_seconds, 0.0);
}

TEST_F(TasqFixture, PredictRuntimeMatchesPccEvaluation) {
  const ObservedJob& entry = (*test_observed_)[1];
  Result<PowerLawPcc> pcc = pipeline_->PredictPcc(
      entry.job.graph, ModelKind::kNn, entry.observed_tokens);
  ASSERT_TRUE(pcc.ok());
  Result<double> runtime = pipeline_->PredictRuntime(
      entry.job.graph, ModelKind::kNn, entry.observed_tokens, 24.0);
  ASSERT_TRUE(runtime.ok());
  EXPECT_NEAR(runtime.value(), pcc.value().EvalRunTime(24.0), 1e-9);
}

TEST_F(TasqFixture, UntrainedPipelineFailsCleanly) {
  Tasq fresh;
  const JobGraph& graph = (*test_observed_)[0].job.graph;
  EXPECT_FALSE(fresh.PredictPcc(graph, ModelKind::kNn, 10.0).ok());
  EXPECT_FALSE(fresh.RecommendTokens(graph, ModelKind::kNn, 10.0).ok());
  EXPECT_FALSE(fresh.trained());
}

}  // namespace
}  // namespace tasq
