// Shared main() for every TASQ test binary (linked instead of
// GTest::gtest_main). Its one job is the runtime enforcement tier of the
// checked-math layer: when the build was configured with -DTASQ_FPE=ON,
// hardware traps for FE_DIVBYZERO/FE_INVALID/FE_OVERFLOW are installed
// before any test runs, so a full green ctest run proves the fmath.h
// guards are exhaustive — any unguarded log(0), 0/0, exp overflow, or
// ordered comparison on NaN crashes the test that reached it instead of
// silently propagating inf/NaN. In ordinary builds this main() behaves
// exactly like gtest_main.

#include <gtest/gtest.h>

#include "common/fpe.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  tasq::InstallFpeTrapsIfRequested();
  return RUN_ALL_TESTS();
}
