// Runtime behavior of the annotated synchronization wrappers
// (common/mutex.h). The compile-time half of the contract — that Clang's
// -Wthread-safety rejects un-locked access to TASQ_GUARDED_BY fields — is
// enforced by the TASQ_THREAD_SAFETY build in CI (job static-analysis);
// these tests pin down that the wrappers actually lock, unlock, and wake
// the way std::mutex/std::condition_variable do underneath.
//
// Suite names contain "Mutex"/"CondVar" so the TSan matrix leg
// (check.sh / ci.yml, filter Parallel|Cluster|Serve|Mutex|CondVar) runs
// them under the race detector.

#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tasq {
namespace {

// A guarded counter exercising the annotation macros the way src/ does.
// Under TASQ_THREAD_SAFETY=ON (Clang), removing the MutexLock in Add or
// the TASQ_REQUIRES on AddLocked turns this file into a compile error.
class GuardedCounter {
 public:
  void Add(int delta) TASQ_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    AddLocked(delta);
  }

  int Get() const TASQ_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return value_;
  }

 private:
  void AddLocked(int delta) TASQ_REQUIRES(mutex_) { value_ += delta; }

  mutable Mutex mutex_;
  int value_ TASQ_GUARDED_BY(mutex_) = 0;
};

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  // With real mutual exclusion the total is exact; with a broken lock the
  // lost updates (and TSan) make this fail virtually every run.
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 25000;
  GuardedCounter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (int i = 0; i < kIncrementsPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), kThreads * kIncrementsPerThread);
}

TEST(MutexTest, MutexLockReleasesAtScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
  }
  // If the scope above leaked the lock, this Lock would deadlock (and the
  // test harness timeout would flag it).
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, LockIsReacquirableAcrossThreads) {
  // The same mutex taken alternately from two threads: a handoff through
  // Lock/Unlock must neither deadlock nor corrupt the guarded value.
  Mutex mu;
  int shared = 0;  // Guarded by mu.
  std::thread other([&]() {
    for (int i = 0; i < 1000; ++i) {
      MutexLock lock(mu);
      ++shared;
    }
  });
  for (int i = 0; i < 1000; ++i) {
    MutexLock lock(mu);
    ++shared;
  }
  other.join();
  MutexLock lock(mu);
  EXPECT_EQ(shared, 2000);
}

TEST(CondVarTest, WaitWakesOnNotifyOne) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // Guarded by mu.
  bool seen = false;   // Guarded by mu.

  std::thread waiter([&]() {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    seen = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_TRUE(seen);
}

TEST(CondVarTest, NotifyBeforeWaitIsNotLost) {
  // The waiter checks the predicate under the lock before sleeping, so a
  // notification that happens-before the wait cannot be lost — the classic
  // reason Wait must be called in a predicate loop.
  Mutex mu;
  CondVar cv;
  bool ready = false;  // Guarded by mu.
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();  // No one is waiting yet.
  std::thread waiter([&]() {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  waiter.join();  // Terminates because the predicate is already true.
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr size_t kWaiters = 4;
  Mutex mu;
  CondVar cv;
  bool go = false;        // Guarded by mu.
  size_t awake = 0;       // Guarded by mu.
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&]() {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

TEST(CondVarTest, WaitReacquiresTheMutexBeforeReturning) {
  // Producer/consumer ping-pong: every Wait return must hold the lock, or
  // the unprotected increments would race (TSan) and the alternation
  // invariant would break.
  Mutex mu;
  CondVar cv;
  int turn = 0;  // Guarded by mu. Even: main's turn; odd: worker's turn.
  constexpr int kRounds = 500;

  std::thread worker([&]() {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(mu);
      while (turn % 2 == 0) cv.Wait(mu);
      ++turn;
      cv.NotifyOne();
    }
  });
  for (int i = 0; i < kRounds; ++i) {
    MutexLock lock(mu);
    while (turn % 2 == 1) cv.Wait(mu);
    ++turn;
    cv.NotifyOne();
  }
  worker.join();
  MutexLock lock(mu);
  EXPECT_EQ(turn, 2 * kRounds);
}

}  // namespace
}  // namespace tasq
