#include <gtest/gtest.h>

#include "gbdt/gbdt.h"
#include "tasq/what_if.h"
#include "workload/generator.h"

namespace tasq {
namespace {

class WhatIfFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.seed = 17;
    generator_ = new WorkloadGenerator(config);
    NoiseModel noise;
    noise.enabled = true;
    auto observed =
        ObserveWorkload(generator_->Generate(0, 120), noise, 1).value();
    TasqOptions options;
    options.nn.epochs = 20;
    options.gnn.epochs = 2;
    options.gnn.gcn_hidden = {8};
    options.gnn.head_hidden = {8};
    options.xgb.gbdt.num_trees = 30;
    pipeline_ = new Tasq(options);
    ASSERT_TRUE(pipeline_->Train(observed).ok());
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete generator_;
    pipeline_ = nullptr;
    generator_ = nullptr;
  }

  static Tasq* pipeline_;
  static WorkloadGenerator* generator_;
};

Tasq* WhatIfFixture::pipeline_ = nullptr;
WorkloadGenerator* WhatIfFixture::generator_ = nullptr;

TEST_F(WhatIfFixture, ReportIsInternallyConsistent) {
  Job job = generator_->GenerateJob(900);
  for (ModelKind model : {ModelKind::kNn, ModelKind::kGnn,
                          ModelKind::kXgboostPl, ModelKind::kXgboostSs}) {
    auto report = BuildWhatIfReport(*pipeline_, job.graph, model,
                                    job.default_tokens, 9);
    ASSERT_TRUE(report.ok()) << ModelKindName(model);
    const WhatIfReport& r = report.value();
    EXPECT_EQ(r.has_pcc, model != ModelKind::kXgboostSs);
    ASSERT_EQ(r.curve.size(), 9u);
    // Curve spans 20%..100% of the reference.
    EXPECT_NEAR(r.curve.back().tokens, job.default_tokens, 1e-9);
    EXPECT_LE(r.curve.front().tokens, job.default_tokens * 0.2 + 1.0);
    // The reference point itself has zero slowdown and zero savings.
    EXPECT_NEAR(r.curve.back().predicted_slowdown, 0.0, 1e-9);
    EXPECT_NEAR(r.curve.back().token_savings_fraction, 0.0, 1e-9);
    // Recommendations are within range; bounded never requests fewer
    // tokens than aggressive.
    EXPECT_GE(r.aggressive.tokens, 1.0);
    EXPECT_LE(r.aggressive.tokens, job.default_tokens);
    EXPECT_GE(r.bounded.tokens + 1e-9, r.aggressive.tokens);
  }
}

TEST_F(WhatIfFixture, MonotoneModelsProduceMonotoneCurvePoints) {
  Job job = generator_->GenerateJob(901);
  auto report = BuildWhatIfReport(*pipeline_, job.graph, ModelKind::kNn,
                                  job.default_tokens);
  ASSERT_TRUE(report.ok());
  for (size_t i = 1; i < report.value().curve.size(); ++i) {
    EXPECT_LE(report.value().curve[i].predicted_runtime_seconds,
              report.value().curve[i - 1].predicted_runtime_seconds + 1e-9);
  }
}

TEST_F(WhatIfFixture, ToTextMentionsKeyNumbers) {
  Job job = generator_->GenerateJob(902);
  auto report = BuildWhatIfReport(*pipeline_, job.graph, ModelKind::kNn,
                                  job.default_tokens);
  ASSERT_TRUE(report.ok());
  std::string text = report.value().ToText();
  EXPECT_NE(text.find("What-if report (NN)"), std::string::npos);
  EXPECT_NE(text.find("predicted PCC"), std::string::npos);
  EXPECT_NE(text.find("aggressive"), std::string::npos);
  EXPECT_NE(text.find("bounded"), std::string::npos);
}

TEST_F(WhatIfFixture, ValidatesInput) {
  Job job = generator_->GenerateJob(903);
  EXPECT_FALSE(
      BuildWhatIfReport(*pipeline_, job.graph, ModelKind::kNn, 0.5).ok());
  Tasq untrained;
  EXPECT_FALSE(
      BuildWhatIfReport(untrained, job.graph, ModelKind::kNn, 50.0).ok());
}

TEST(FeatureImportanceTest, HighlightsInformativeFeature) {
  // y depends only on feature 0; importance must concentrate there.
  Rng rng(2);
  std::vector<double> features;
  std::vector<double> targets;
  for (int i = 0; i < 600; ++i) {
    double x0 = rng.Uniform(0.0, 1.0);
    double x1 = rng.Uniform(0.0, 1.0);
    double x2 = rng.Uniform(0.0, 1.0);
    features.insert(features.end(), {x0, x1, x2});
    targets.push_back(std::exp(1.0 + 2.0 * x0));
  }
  GbdtOptions options;
  options.num_trees = 40;
  GbdtRegressor model(options);
  ASSERT_TRUE(model.Train(features, 600, 3, targets).ok());
  std::vector<double> importance = model.FeatureImportance();
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[0], 0.6);
  double sum = importance[0] + importance[1] + importance[2];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Untrained model: all zero.
  GbdtRegressor fresh(options);
  EXPECT_TRUE(fresh.FeatureImportance().empty());
}

}  // namespace
}  // namespace tasq
