#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/stats.h"
#include "simcluster/cluster_simulator.h"
#include "workload/generator.h"
#include "workload/operators.h"

namespace tasq {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.seed = 42;
  return config;
}

TEST(OperatorTraitsTest, EveryOperatorHasAName) {
  std::set<std::string> names;
  for (size_t i = 0; i < kPhysicalOperatorCount; ++i) {
    auto op = static_cast<PhysicalOperator>(i);
    const OperatorTraits& traits = GetOperatorTraits(op);
    ASSERT_NE(traits.name, nullptr);
    EXPECT_GT(traits.cost_factor, 0.0);
    EXPECT_LE(traits.selectivity_lo, traits.selectivity_hi);
    names.insert(traits.name);
  }
  // Names are unique.
  EXPECT_EQ(names.size(), kPhysicalOperatorCount);
}

TEST(OperatorTraitsTest, PartitioningNames) {
  EXPECT_STREQ(PartitioningMethodName(PartitioningMethod::kHash), "Hash");
  EXPECT_STREQ(PartitioningMethodName(PartitioningMethod::kNone), "None");
}

TEST(WorkloadGeneratorTest, DeterministicPerJobId) {
  WorkloadGenerator generator(SmallConfig());
  Job a = generator.GenerateJob(17);
  Job b = generator.GenerateJob(17);
  EXPECT_EQ(a.plan.stages.size(), b.plan.stages.size());
  EXPECT_EQ(a.graph.operators.size(), b.graph.operators.size());
  EXPECT_DOUBLE_EQ(a.default_tokens, b.default_tokens);
  for (size_t s = 0; s < a.plan.stages.size(); ++s) {
    EXPECT_EQ(a.plan.stages[s].num_tasks, b.plan.stages[s].num_tasks);
    EXPECT_DOUBLE_EQ(a.plan.stages[s].task_duration_seconds,
                     b.plan.stages[s].task_duration_seconds);
  }
}

TEST(WorkloadGeneratorTest, JobIdsAreIndependentStreams) {
  // Generating job 5 alone equals generating jobs 0..9 and taking the 6th.
  WorkloadGenerator generator(SmallConfig());
  Job alone = generator.GenerateJob(5);
  std::vector<Job> batch = generator.Generate(0, 10);
  EXPECT_EQ(alone.plan.stages.size(), batch[5].plan.stages.size());
  EXPECT_DOUBLE_EQ(alone.default_tokens, batch[5].default_tokens);
}

TEST(WorkloadGeneratorTest, AllJobsStructurallyValid) {
  WorkloadGenerator generator(SmallConfig());
  for (const Job& job : generator.Generate(0, 200)) {
    EXPECT_TRUE(job.plan.Validate().ok()) << "job " << job.id;
    EXPECT_TRUE(job.graph.Validate().ok()) << "job " << job.id;
    EXPECT_GE(job.default_tokens, 1.0);
  }
}

TEST(WorkloadGeneratorTest, DefaultRequestCoversWidestStage) {
  WorkloadGenerator generator(SmallConfig());
  for (const Job& job : generator.Generate(0, 100)) {
    EXPECT_GE(job.default_tokens + 1e-9,
              static_cast<double>(job.plan.MaxStageTasks()));
  }
}

TEST(WorkloadGeneratorTest, GraphHasSingleSinkAndIsConnected) {
  WorkloadGenerator generator(SmallConfig());
  for (const Job& job : generator.Generate(0, 100)) {
    const auto& ops = job.graph.operators;
    // Exactly one operator (the last) has no consumers.
    std::vector<bool> consumed(ops.size(), false);
    for (const auto& node : ops) {
      for (int in : node.inputs) consumed[static_cast<size_t>(in)] = true;
    }
    int sinks = 0;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!consumed[i]) ++sinks;
    }
    EXPECT_EQ(sinks, 1) << "job " << job.id;
    EXPECT_FALSE(consumed.back());
    EXPECT_EQ(ops.back().op, PhysicalOperator::kOutput);
  }
}

TEST(WorkloadGeneratorTest, MixesRecurringAndAdhoc) {
  WorkloadGenerator generator(SmallConfig());
  int recurring = 0;
  int adhoc = 0;
  std::set<int> templates;
  for (const Job& job : generator.Generate(0, 300)) {
    if (job.recurring) {
      ++recurring;
      EXPECT_GE(job.template_id, 0);
      templates.insert(job.template_id);
    } else {
      ++adhoc;
      EXPECT_EQ(job.template_id, -1);
    }
  }
  // Configured 60/40 split, with generous slack.
  EXPECT_GT(recurring, 120);
  EXPECT_GT(adhoc, 60);
  EXPECT_GT(templates.size(), 10u);
}

TEST(WorkloadGeneratorTest, RecurrencesOfATemplateDriftInScale) {
  WorkloadGenerator generator(SmallConfig());
  std::vector<Job> jobs = generator.Generate(0, 500);
  // Find a template with several recurrences and check input scales vary.
  for (int target = 0; target < 40; ++target) {
    std::vector<double> scales;
    for (const Job& job : jobs) {
      if (job.recurring && job.template_id == target) {
        scales.push_back(job.input_scale);
      }
    }
    if (scales.size() >= 5) {
      EXPECT_GT(StdDev(scales), 0.0);
      return;
    }
  }
  FAIL() << "no template recurred at least 5 times in 500 jobs";
}

TEST(WorkloadGeneratorTest, TokenDistributionIsRightSkewed) {
  // Shape of the paper's workload: mean peak tokens well above the median.
  WorkloadGenerator generator(SmallConfig());
  std::vector<double> widths;
  for (const Job& job : generator.Generate(0, 400)) {
    widths.push_back(static_cast<double>(job.plan.MaxStageTasks()));
  }
  double mean = Mean(widths);
  double median = Median(widths);
  EXPECT_GT(mean, median);
  EXPECT_GT(median, 5.0);
  EXPECT_LT(median, 200.0);
}

TEST(WorkloadGeneratorTest, RuntimeDistributionIsRightSkewed) {
  WorkloadGenerator generator(SmallConfig());
  ClusterSimulator sim;
  std::vector<double> runtimes;
  for (const Job& job : generator.Generate(0, 60)) {
    auto result = sim.Run(job.plan, RunConfig{job.default_tokens, {}, 0});
    ASSERT_TRUE(result.ok());
    runtimes.push_back(result.value().runtime_seconds);
  }
  EXPECT_GT(Mean(runtimes), Median(runtimes));
  // Median run time lands in the "few minutes" regime (shape target).
  EXPECT_GT(Median(runtimes), 20.0);
  EXPECT_LT(Median(runtimes), 2000.0);
}

TEST(WorkloadGeneratorTest, FeaturesAreFiniteAndPlausible) {
  WorkloadGenerator generator(SmallConfig());
  for (const Job& job : generator.Generate(0, 50)) {
    for (const OperatorNode& node : job.graph.operators) {
      const OperatorFeatures& f = node.features;
      EXPECT_GE(f.output_cardinality, 1.0);
      EXPECT_GE(f.leaf_input_cardinality, 0.0);
      EXPECT_GT(f.average_row_length, 0.0);
      EXPECT_GT(f.cost_exclusive, 0.0);
      EXPECT_GE(f.cost_subtree, f.cost_exclusive);
      EXPECT_GT(f.cost_total, 0.0);
      EXPECT_GE(f.num_partitions, 1);
      EXPECT_GE(f.num_partitioning_columns, 0);
      EXPECT_GE(f.num_sort_columns, 0);
      EXPECT_TRUE(std::isfinite(f.cost_subtree));
      EXPECT_TRUE(std::isfinite(f.output_cardinality));
    }
  }
}

TEST(WorkloadGeneratorTest, CostFeaturesTrackActualWork) {
  // The optimizer estimates must correlate with true work, else models
  // could never learn the PCC from compile-time features.
  WorkloadGenerator generator(SmallConfig());
  std::vector<double> estimated;
  std::vector<double> actual;
  for (const Job& job : generator.Generate(0, 150)) {
    estimated.push_back(job.graph.operators.back().features.cost_total);
    actual.push_back(job.plan.TotalWorkTokenSeconds());
  }
  EXPECT_GT(PearsonCorrelation(estimated, actual), 0.9);
}

TEST(WorkloadGeneratorTest, GlobalInputScaleGrowsJobs) {
  WorkloadConfig small = SmallConfig();
  WorkloadConfig grown = SmallConfig();
  grown.global_input_scale = 3.0;
  WorkloadGenerator small_gen(small);
  WorkloadGenerator grown_gen(grown);
  double small_work = 0.0;
  double grown_work = 0.0;
  for (int64_t id = 0; id < 60; ++id) {
    small_work += small_gen.GenerateJob(id).plan.TotalWorkTokenSeconds();
    grown_work += grown_gen.GenerateJob(id).plan.TotalWorkTokenSeconds();
  }
  // Work grows superlinearly in aggregate but at least noticeably.
  EXPECT_GT(grown_work, small_work * 1.5);
}

TEST(WorkloadGeneratorTest, CostCalibrationDriftHidesFromFeatures) {
  // Doubling seconds-per-cost-unit doubles real durations but leaves cost
  // features (in the optimizer's units) unchanged.
  WorkloadConfig base = SmallConfig();
  WorkloadConfig slow = SmallConfig();
  slow.seconds_per_cost_unit = 2.0;
  Job fast_job = WorkloadGenerator(base).GenerateJob(7);
  Job slow_job = WorkloadGenerator(slow).GenerateJob(7);
  ASSERT_EQ(fast_job.plan.stages.size(), slow_job.plan.stages.size());
  for (size_t s = 0; s < fast_job.plan.stages.size(); ++s) {
    double fast_d = fast_job.plan.stages[s].task_duration_seconds;
    double slow_d = slow_job.plan.stages[s].task_duration_seconds;
    // Clamping can cut the ratio at the [1, 600] bounds.
    if (fast_d > 1.0 && slow_d < 600.0) {
      EXPECT_NEAR(slow_d / fast_d, 2.0, 1e-9);
    }
  }
  ASSERT_EQ(fast_job.graph.operators.size(), slow_job.graph.operators.size());
  double fast_cost = fast_job.graph.operators.back().features.cost_total;
  double slow_cost = slow_job.graph.operators.back().features.cost_total;
  // Estimated cost stays in cost units: the ratio is ~1, not ~2.
  EXPECT_NEAR(slow_cost / fast_cost, 1.0, 0.25);
}

TEST(WorkloadGeneratorTest, OperatorStagesMatchPlanStages) {
  WorkloadGenerator generator(SmallConfig());
  for (const Job& job : generator.Generate(0, 50)) {
    EXPECT_EQ(job.graph.NumStages(),
              static_cast<int>(job.plan.stages.size()));
    for (const OperatorNode& node : job.graph.operators) {
      ASSERT_LT(node.stage, static_cast<int>(job.plan.stages.size()));
      EXPECT_EQ(node.features.num_partitions,
                job.plan.stages[static_cast<size_t>(node.stage)].num_tasks);
    }
  }
}

}  // namespace
}  // namespace tasq
